package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 {
		t.Fatalf("summary = %+v", s)
	}
	wantSD := math.Sqrt(1.25)
	if math.Abs(s.Stddev-wantSD) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", s.Stddev, wantSD)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestMedianOdd(t *testing.T) {
	if m := Median([]float64{5, 1, 3}); m != 3 {
		t.Fatalf("median = %v", m)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestDismissOutliers(t *testing.T) {
	// One wild point among tight ones.
	xs := []float64{10, 10.1, 9.9, 10, 50}
	kept, dropped := DismissOutliers(xs, 1)
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	for _, x := range kept {
		if x == 50 {
			t.Fatal("outlier survived")
		}
	}
}

func TestDismissOutliersUniformSample(t *testing.T) {
	xs := []float64{5, 5, 5, 5}
	kept, dropped := DismissOutliers(xs, 1)
	if dropped != 0 || len(kept) != 4 {
		t.Fatalf("uniform sample dismissed: kept=%v dropped=%d", kept, dropped)
	}
}

func TestDismissOutliersTinySample(t *testing.T) {
	xs := []float64{1, 100}
	if _, dropped := DismissOutliers(xs, 1); dropped != 0 {
		t.Fatal("two-point sample should never dismiss")
	}
}

func TestSeriesRatio(t *testing.T) {
	ref := &Series{Label: "reference", X: []float64{1, 2, 4}, Y: []float64{1, 2, 4}}
	sch := &Series{Label: "scheme", X: []float64{1, 2, 4}, Y: []float64{3, 6, 12}}
	r := Ratio("slowdown", sch, ref)
	for i, y := range r.Y {
		if y != 3 {
			t.Fatalf("ratio[%d] = %v, want 3", i, y)
		}
	}
}

func TestSeriesRatioSkipsMissingX(t *testing.T) {
	ref := &Series{X: []float64{1, 2}, Y: []float64{1, 1}}
	sch := &Series{X: []float64{1, 3}, Y: []float64{5, 5}}
	r := Ratio("s", sch, ref)
	if r.Len() != 1 || r.X[0] != 1 {
		t.Fatalf("ratio = %+v", r)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("geomean = %v", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("empty geomean = %v", g)
	}
	if g := GeoMean([]float64{-1, 0}); g != 0 {
		t.Fatalf("non-positive geomean = %v", g)
	}
}

func TestSeriesValidate(t *testing.T) {
	s := &Series{Label: "x", X: []float64{1}, Y: nil}
	if err := s.Validate(); err == nil {
		t.Fatal("mismatched series validated")
	}
	s.Append(2, 3)
	// Now 2 xs, 1 y — still invalid.
	if err := s.Validate(); err == nil {
		t.Fatal("still mismatched")
	}
}

// Property: mean is within [min, max] and dismissal never increases
// the spread.
func TestQuickMeanBounds(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: DismissOutliers output is a subsequence of the input.
func TestQuickDismissSubset(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		kept, dropped := DismissOutliers(xs, 1)
		if len(kept)+dropped != len(xs) {
			return false
		}
		// Subsequence check.
		j := 0
		for _, x := range xs {
			if j < len(kept) && kept[j] == x {
				j++
			}
		}
		return j == len(kept)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %g", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Fatalf("q1 = %g", got)
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Fatalf("median quantile = %g", got)
	}
	if got := Quantile(xs, 0.75); got != 4 {
		t.Fatalf("q0.75 = %g", got)
	}
	if xs[0] != 4 {
		t.Fatal("Quantile mutated its input")
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("empty sample = %g", got)
	}
	if got := Quantile([]float64{7}, 0.99); got != 7 {
		t.Fatalf("singleton = %g", got)
	}
}
