// Package stats provides the small statistics toolkit the measurement
// harness needs: summary statistics, the paper's one-standard-deviation
// outlier dismissal (§3.2), and labelled series for the plotting and
// reporting layers.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64 // population standard deviation
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary in two passes. An empty sample returns
// the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Stddev = math.Sqrt(ss / float64(len(xs)))
	s.Median = Median(xs)
	return s
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Stddev returns the population standard deviation, or 0 for samples
// of fewer than two points.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Median returns the sample median without modifying xs.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	sort.Float64s(tmp)
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the sample by linear
// interpolation between order statistics, without mutating the input.
// Out-of-range q clamps; an empty sample returns 0.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	sort.Float64s(tmp)
	switch {
	case q <= 0:
		return tmp[0]
	case q >= 1:
		return tmp[len(tmp)-1]
	}
	pos := q * float64(len(tmp)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(tmp) {
		return tmp[lo]
	}
	return tmp[lo]*(1-frac) + tmp[lo+1]*frac
}

// Min returns the smallest element, or +Inf for an empty sample.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element, or -Inf for an empty sample.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// DismissOutliers implements the paper's measurement rule: drop
// observations more than nsigma standard deviations from the mean.
// ("Our code is set up to dismiss measurements that are more than one
// standard deviation from the average" — §3.2.) It returns a new slice
// and the number of dismissed points. If every point would be
// dismissed (possible for tiny samples), the input is returned
// unchanged, matching the paper's observation that in practice the
// test never fires.
func DismissOutliers(xs []float64, nsigma float64) ([]float64, int) {
	if len(xs) < 3 || nsigma <= 0 {
		return xs, 0
	}
	m := Mean(xs)
	sd := Stddev(xs)
	// Spread below a relative epsilon is floating-point noise (the
	// deterministic virtual clock produces byte-identical repetitions
	// whose float64 differences are a few ulps), not outliers.
	if sd == 0 || sd < math.Abs(m)*1e-9 {
		return xs, 0
	}
	kept := make([]float64, 0, len(xs))
	for _, x := range xs {
		if math.Abs(x-m) <= nsigma*sd {
			kept = append(kept, x)
		}
	}
	if len(kept) == 0 {
		return xs, 0
	}
	return kept, len(xs) - len(kept)
}

// Series is a labelled (x, y) sequence: one curve of one panel of one
// figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Append adds a point to the series.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// YAt returns the y value for the given x, or (0, false) when x is not
// present. Xs are compared exactly; callers use the same generator for
// all curves of a figure, so exact match is well-defined.
func (s *Series) YAt(x float64) (float64, bool) {
	for i, xv := range s.X {
		if xv == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// Validate checks the X/Y length contract.
func (s *Series) Validate() error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("stats: series %q has %d xs but %d ys", s.Label, len(s.X), len(s.Y))
	}
	return nil
}

// Ratio returns a new series whose Y values are num.Y/den.Y at the xs
// common to both, in num's order: the "slowdown" panel is
// Ratio(scheme, reference).
func Ratio(label string, num, den *Series) *Series {
	out := &Series{Label: label}
	for i, x := range num.X {
		if d, ok := den.YAt(x); ok && d != 0 {
			out.Append(x, num.Y[i]/d)
		}
	}
	return out
}

// GeoMean returns the geometric mean of positive Y values of a series,
// a robust single-number summary for slowdown curves.
func GeoMean(ys []float64) float64 {
	var sum float64
	var n int
	for _, y := range ys {
		if y > 0 {
			sum += math.Log(y)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
