package buf

import "testing"

func TestPoolClassFor(t *testing.T) {
	cases := []struct {
		n    int
		want int
	}{
		{0, -1},
		{-4, -1},
		{1, 0},
		{256, 0},
		{257, 1},
		{1 << 20, 20 - minPoolBits},
		{1 << maxPoolBits, poolClasses - 1},
		{1<<maxPoolBits + 1, -1},
	}
	for _, c := range cases {
		if got := poolClassFor(c.n); got != c.want {
			t.Errorf("poolClassFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestPoolRecycles(t *testing.T) {
	// sync.Pool may drop entries under GC pressure, so assert the
	// reuse path via counters over enough round trips that at least
	// one hit is effectively certain.
	before := PoolStatsSnapshot()
	var hits bool
	for i := 0; i < 64 && !hits; i++ {
		b := GetPooled(10_000)
		if b.Len() != 10_000 || b.IsVirtual() {
			t.Fatalf("pooled block: %v", b)
		}
		b.Bytes()[0] = 0xAB
		PutPooled(b)
		hits = PoolStatsSnapshot().Sub(before).Hits > 0
	}
	d := PoolStatsSnapshot().Sub(before)
	if d.Puts == 0 || d.Gets == 0 {
		t.Fatalf("pool counters did not move: %+v", d)
	}
	if !hits {
		t.Fatalf("no pooled reuse across 64 get/put round trips: %+v", d)
	}
}

func TestPoolDistinctRegions(t *testing.T) {
	a := GetPooled(512)
	PutPooled(a)
	b := GetPooled(512)
	if a.Region() == b.Region() {
		t.Fatal("recycled block kept its old region identity")
	}
	PutPooled(b)
}

func TestPutPooledNoops(t *testing.T) {
	// Plain, virtual and sliced blocks must be ignored.
	PutPooled(Alloc(128))
	PutPooled(Virtual(128))
	p := GetPooled(1024)
	view := p.Slice(0, 512)
	PutPooled(view) // a view must never release the backing storage
	view.Bytes()[0] = 1
	PutPooled(p)
}

func TestPoolOutOfRangeFallsBack(t *testing.T) {
	big := GetPooled(1<<maxPoolBits + 1)
	if big.Len() != 1<<maxPoolBits+1 {
		t.Fatalf("fallback length: %d", big.Len())
	}
	// Fallback blocks are plain allocations: zeroed, non-pooled.
	if big.Bytes()[0] != 0 {
		t.Fatal("fallback block not zeroed")
	}
	PutPooled(big) // no-op
}
