package buf

import (
	"testing"
	"testing/quick"
)

func TestAllocZeroed(t *testing.T) {
	b := Alloc(128)
	if b.Len() != 128 {
		t.Fatalf("Len = %d, want 128", b.Len())
	}
	if b.IsVirtual() {
		t.Fatal("Alloc returned a virtual block")
	}
	for i, x := range b.Bytes() {
		if x != 0 {
			t.Fatalf("byte %d = %d, want 0", i, x)
		}
	}
}

func TestAllocAlignedLen(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 4096} {
		b := AllocAligned(n)
		if b.Len() != n {
			t.Errorf("AllocAligned(%d).Len() = %d", n, b.Len())
		}
	}
}

func TestVirtualBlock(t *testing.T) {
	v := Virtual(1 << 30)
	if !v.IsVirtual() {
		t.Fatal("Virtual block reports real")
	}
	if v.Len() != 1<<30 {
		t.Fatalf("Len = %d", v.Len())
	}
	if v.Bytes() != nil {
		t.Fatal("virtual block has backing bytes")
	}
	// Copies involving virtual blocks count but do not move bytes.
	r := Alloc(64)
	if n := Copy(r, v.Slice(0, 64)); n != 64 {
		t.Fatalf("Copy = %d, want 64", n)
	}
}

func TestSliceAliasing(t *testing.T) {
	b := Alloc(16)
	s := b.Slice(4, 8)
	s.Bytes()[0] = 42
	if b.Bytes()[4] != 42 {
		t.Fatal("slice does not alias parent")
	}
	if s.Region() != b.Region() {
		t.Fatal("slice changed region identity")
	}
}

func TestSliceBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Slice did not panic")
		}
	}()
	Alloc(8).Slice(4, 8)
}

func TestCopyAt(t *testing.T) {
	src := Alloc(10)
	for i := range src.Bytes() {
		src.Bytes()[i] = byte(i + 1)
	}
	dst := Alloc(10)
	if n := CopyAt(dst, 2, src, 5, 3); n != 3 {
		t.Fatalf("CopyAt = %d", n)
	}
	want := []byte{0, 0, 6, 7, 8, 0, 0, 0, 0, 0}
	for i, w := range want {
		if dst.Bytes()[i] != w {
			t.Fatalf("dst[%d] = %d, want %d", i, dst.Bytes()[i], w)
		}
	}
}

func TestCopyAtBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range CopyAt did not panic")
		}
	}()
	CopyAt(Alloc(4), 0, Alloc(4), 2, 3)
}

func TestFillVerifyPattern(t *testing.T) {
	b := Alloc(1 << 16)
	b.FillPattern(7)
	if err := b.VerifyPattern(7); err != nil {
		t.Fatalf("VerifyPattern: %v", err)
	}
	b.Bytes()[1234] ^= 0xff
	if err := b.VerifyPattern(7); err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestPatternSeedsDiffer(t *testing.T) {
	a := Alloc(256)
	b := Alloc(256)
	a.FillPattern(1)
	b.FillPattern(2)
	if Equal(a, b) {
		t.Fatal("different seeds produced identical patterns")
	}
}

func TestEqual(t *testing.T) {
	a, b := Alloc(32), Alloc(32)
	a.FillPattern(9)
	b.FillPattern(9)
	if !Equal(a, b) {
		t.Fatal("identical blocks not equal")
	}
	if Equal(a, Alloc(16)) {
		t.Fatal("length mismatch reported equal")
	}
	if !Equal(a, Virtual(32)) {
		t.Fatal("virtual comparison must be length-only")
	}
}

func TestRegionsDistinct(t *testing.T) {
	if Alloc(1).Region() == Alloc(1).Region() {
		t.Fatal("two allocations share a region")
	}
}

func TestZero(t *testing.T) {
	b := Alloc(64)
	b.FillPattern(3)
	b.Zero()
	for i, x := range b.Bytes() {
		if x != 0 {
			t.Fatalf("byte %d = %d after Zero", i, x)
		}
	}
}

// Property: a round trip through CopyAt preserves any pattern for any
// sizes and offsets within bounds.
func TestQuickCopyRoundTrip(t *testing.T) {
	f := func(seed byte, size uint16, off uint8) bool {
		n := int(size)%512 + 1
		o := int(off) % n
		src := Alloc(n)
		src.FillPattern(seed)
		dst := Alloc(n)
		CopyAt(dst, o, src, o, n-o)
		for i := o; i < n; i++ {
			if dst.Bytes()[i] != src.Bytes()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Copy never reports more bytes than either block holds.
func TestQuickCopyClamped(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int(a)%1024, int(b)%1024
		n := Copy(Alloc(x), Alloc(y))
		min := x
		if y < x {
			min = y
		}
		return n == min
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
