package buf

import "encoding/binary"

// Checksum is the streaming word-wise integrity hash over a payload's
// packed byte stream: an FNV-1a-style 64-bit fold taken eight bytes
// per step, with a carry buffer so the value is a pure function of the
// byte stream regardless of how the stream was chunked. Sender and
// receiver walk the same packed-stream order (possibly through
// different segmentations — internal chunks, pipeline slots, fused
// runs) and must arrive at the same Sum64.
//
// The kernel is deliberately cheap — one XOR and one multiply per
// eight bytes — and allocation-free, so checksumming the zero-staging
// paths adds a single pass over bytes already in cache and nothing
// else. It is an integrity check against the fabric's injected
// corruption, not a cryptographic MAC.
type Checksum struct {
	h    uint64
	pend [8]byte
	n    int   // buffered bytes in pend (0..7)
	len  int64 // total stream length folded so far, incl. virtual
}

const (
	csumOffset = 14695981039346656037
	csumPrime  = 1099511628211
)

// Reset returns the checksum to its initial state.
func (c *Checksum) Reset() { *c = Checksum{} }

// Write folds p into the checksum.
func (c *Checksum) Write(p []byte) {
	if c.h == 0 && c.len == 0 {
		c.h = csumOffset
	}
	c.len += int64(len(p))
	// Drain the carry buffer first.
	if c.n > 0 {
		k := copy(c.pend[c.n:], p)
		c.n += k
		p = p[k:]
		if c.n < 8 {
			return
		}
		c.h = (c.h ^ binary.LittleEndian.Uint64(c.pend[:])) * csumPrime
		c.n = 0
	}
	for len(p) >= 8 {
		c.h = (c.h ^ binary.LittleEndian.Uint64(p)) * csumPrime
		p = p[8:]
	}
	if len(p) > 0 {
		c.n = copy(c.pend[:], p)
	}
}

// SkipVirtual accounts n bytes of a virtual (storage-less) payload:
// both ends of a virtual transfer skip identically, so their sums
// still agree and still bind the stream length.
func (c *Checksum) SkipVirtual(n int64) {
	if c.h == 0 && c.len == 0 {
		c.h = csumOffset
	}
	c.len += n
}

// Len returns the total stream length folded so far.
func (c *Checksum) Len() int64 { return c.len }

// Sum64 finalises over a copy of the state — the checksum remains
// usable for further writes — folding in the pending tail and the
// stream length, so streams differing only by a short tail or by
// length cannot collide trivially.
func (c *Checksum) Sum64() uint64 {
	h := c.h
	if h == 0 && c.len == 0 {
		h = csumOffset
	}
	if c.n > 0 {
		var tail [8]byte
		copy(tail[:], c.pend[:c.n])
		h = (h ^ binary.LittleEndian.Uint64(tail[:])) * csumPrime
		h = (h ^ uint64(c.n)) * csumPrime
	}
	h = (h ^ uint64(c.len)) * csumPrime
	return h
}

// ChecksumOf is the one-shot helper: the checksum of a whole block's
// byte stream (length-only for virtual blocks).
func ChecksumOf(b Block) uint64 {
	var c Checksum
	if b.IsVirtual() {
		c.SkipVirtual(int64(b.Len()))
	} else {
		c.Write(b.Bytes())
	}
	return c.Sum64()
}
