package buf

import (
	"sync"
	"sync/atomic"
)

// This file implements the size-classed block pool behind the
// runtime's transient buffers: pack scratch, eager transit copies and
// rendezvous staging in internal/mpi. Those allocations are pure
// per-message overhead — exactly the software cost the paper shows
// dominating non-contiguous sends — so the hot path recycles them
// through power-of-two sync.Pool classes instead of allocating.
//
// The free lists are sharded: each rank of the simulated world draws
// from its own shard (GetPooledFor), so at high world sizes the ranks'
// transit churn does not contend on one free list per class. A block
// remembers its home shard and PutPooled returns the storage there,
// wherever the release happens (receive completions run on the peer
// rank's goroutine).
//
// Contract: GetPooled returns a real block whose contents are
// UNDEFINED (not zeroed — zeroing would cost the bandwidth the pool
// saves); callers must write before they read. PutPooled returns the
// backing storage to its class; the caller must not touch the block —
// or any Slice of it — afterwards. Only the Block returned by
// GetPooled can release the storage: sub-blocks made with Slice are
// plain views. Double-release is the caller's bug, as with any free
// list; the release points in internal/mpi are the single
// receive-completion sites.

const (
	// minPoolBits..maxPoolBits bound the pooled classes: 256 B to
	// 64 MiB. Below, the allocator is cheap enough; above, holding the
	// memory would outweigh reuse (the harness caps real payloads at
	// 16 MiB by default).
	minPoolBits = 8
	maxPoolBits = 26

	poolClasses = maxPoolBits - minPoolBits + 1
)

// PoolShards is the number of independent free-list shards. Ranks map
// onto shards modulo this count (a power of two, so the map is a
// mask); more shards than a node has memory channels buys nothing.
const PoolShards = 8

var blockPools [PoolShards][poolClasses]sync.Pool

// poolCounters feed PoolStats so tests and studies can verify reuse.
// The totals are kept alongside the per-shard breakdown so the cheap
// whole-pool read never sums an array.
var poolCounters struct {
	gets, hits, puts atomic.Int64

	shard [PoolShards]struct {
		gets, hits, puts, inUse atomic.Int64
	}
}

// Pool occupancy accounting for bounded-memory backpressure: inUse is
// the storage (class-rounded) currently checked out of the pool,
// capBytes the soft occupancy cap (0 = unlimited), degradations the
// number of sends that fell back from eager to rendezvous because a
// transit copy would have pushed occupancy past the cap.
var poolPressure struct {
	inUse        atomic.Int64
	capBytes     atomic.Int64
	degradations atomic.Int64
	eagerAdapted atomic.Int64
}

// SetPoolCap sets the pool occupancy cap in bytes (0 disables) and
// returns the previous cap. Senders consult PoolOverCap before drawing
// an eager transit copy; past the cap they degrade to rendezvous,
// which stages nothing on the send side.
func SetPoolCap(n int64) int64 {
	return poolPressure.capBytes.Swap(n)
}

// PoolCap returns the current occupancy cap (0 = unlimited).
func PoolCap() int64 { return poolPressure.capBytes.Load() }

// PoolInUse returns the class-rounded bytes currently checked out.
func PoolInUse() int64 { return poolPressure.inUse.Load() }

// PoolOverCap reports whether drawing extra more bytes would push the
// pool past its occupancy cap. Always false with no cap set.
func PoolOverCap(extra int64) bool {
	cap := poolPressure.capBytes.Load()
	return cap > 0 && poolPressure.inUse.Load()+extra > cap
}

// NotePoolDegradation records one eager→rendezvous backpressure
// fallback.
func NotePoolDegradation() { poolPressure.degradations.Add(1) }

// PoolPressureRatio returns the occupancy as a fraction of the cap in
// [0,1]; 0 with no cap set. Senders use it to adapt their effective
// eager limit before the hard PoolOverCap wall: shrinking eager
// traffic early keeps occupancy bounded without the latency cliff of
// an outright rendezvous degradation at the cap.
func PoolPressureRatio() float64 {
	cap := poolPressure.capBytes.Load()
	if cap <= 0 {
		return 0
	}
	r := float64(poolPressure.inUse.Load()) / float64(cap)
	if r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// NoteEagerAdaptation records one send whose effective eager limit was
// shrunk by pool pressure (it went rendezvous although the profile's
// nominal eager limit would have allowed an eager transit copy).
func NoteEagerAdaptation() { poolPressure.eagerAdapted.Add(1) }

// ShardPoolStats is one free-list shard's slice of the pool counters.
// Gets and Hits are attributed to the shard the block was drawn from;
// Puts to the block's home shard — the shard the storage returns to —
// wherever the release runs, so a pipeline's slot ring (or any other
// per-rank transit churn) is attributable shard by shard.
type ShardPoolStats struct {
	Gets int64
	Hits int64
	Puts int64
	// InUseBytes is the class-rounded storage currently checked out of
	// this shard — a point-in-time gauge (Sub carries it through), the
	// per-shard occupancy the scale harness reports for imbalance.
	InUseBytes int64
}

// PoolStats is a snapshot of the block-pool counters.
type PoolStats struct {
	Gets int64 // pooled-range GetPooled calls
	Hits int64 // Gets served by recycled storage
	Puts int64 // blocks returned

	// InUseBytes is the class-rounded storage currently checked out;
	// CapBytes the occupancy cap (0 = unlimited); Degradations the
	// count of eager sends that fell back to rendezvous under the cap
	// (see SetPoolCap). InUseBytes and CapBytes are point-in-time
	// gauges, not counters: Sub carries the receiver's values through.
	InUseBytes   int64
	CapBytes     int64
	Degradations int64
	// EagerAdaptations counts sends whose effective eager limit was
	// shrunk under pool pressure before the hard cap (see
	// NoteEagerAdaptation).
	EagerAdaptations int64

	// Shards is the per-shard breakdown; the totals above are its sums.
	Shards [PoolShards]ShardPoolStats
}

// Sub returns the counter-wise difference s - o.
func (s PoolStats) Sub(o PoolStats) PoolStats {
	d := PoolStats{
		Gets: s.Gets - o.Gets, Hits: s.Hits - o.Hits, Puts: s.Puts - o.Puts,
		InUseBytes: s.InUseBytes, CapBytes: s.CapBytes,
		Degradations:     s.Degradations - o.Degradations,
		EagerAdaptations: s.EagerAdaptations - o.EagerAdaptations,
	}
	for i := range d.Shards {
		d.Shards[i] = ShardPoolStats{
			Gets:       s.Shards[i].Gets - o.Shards[i].Gets,
			Hits:       s.Shards[i].Hits - o.Shards[i].Hits,
			Puts:       s.Shards[i].Puts - o.Shards[i].Puts,
			InUseBytes: s.Shards[i].InUseBytes,
		}
	}
	return d
}

// PoolStatsSnapshot returns the current block-pool counters with the
// per-shard breakdown.
func PoolStatsSnapshot() PoolStats {
	st := PoolStats{
		Gets:             poolCounters.gets.Load(),
		Hits:             poolCounters.hits.Load(),
		Puts:             poolCounters.puts.Load(),
		InUseBytes:       poolPressure.inUse.Load(),
		CapBytes:         poolPressure.capBytes.Load(),
		Degradations:     poolPressure.degradations.Load(),
		EagerAdaptations: poolPressure.eagerAdapted.Load(),
	}
	for i := range st.Shards {
		st.Shards[i] = ShardPoolStats{
			Gets:       poolCounters.shard[i].gets.Load(),
			Hits:       poolCounters.shard[i].hits.Load(),
			Puts:       poolCounters.shard[i].puts.Load(),
			InUseBytes: poolCounters.shard[i].inUse.Load(),
		}
	}
	return st
}

// poolClassFor returns the class index for an n-byte request, or -1
// when n lies outside the pooled range.
func poolClassFor(n int) int {
	if n <= 0 || n > 1<<maxPoolBits {
		return -1
	}
	bits := minPoolBits
	for 1<<bits < n {
		bits++
	}
	return bits - minPoolBits
}

// GetPooled returns a real block of n bytes backed by size-classed
// recycled storage from the default shard. The contents are undefined;
// the caller must write before reading. Requests outside the pooled
// range fall back to a plain (zeroed) allocation. The block carries a
// fresh Region: the cache model treats it like any new allocation.
func GetPooled(n int) Block {
	return GetPooledFor(0, n)
}

// GetPooledFor is GetPooled drawing from the free-list shard of the
// given rank (mapped modulo PoolShards), so concurrent ranks recycle
// through independent lists instead of contending on one.
func GetPooledFor(rank, n int) Block {
	c := poolClassFor(n)
	if c < 0 {
		return Alloc(n)
	}
	shard := rank & (PoolShards - 1)
	if rank < 0 {
		shard = 0
	}
	poolCounters.gets.Add(1)
	poolCounters.shard[shard].gets.Add(1)
	poolPressure.inUse.Add(int64(1) << (minPoolBits + c))
	poolCounters.shard[shard].inUse.Add(int64(1) << (minPoolBits + c))
	if v := blockPools[shard][c].Get(); v != nil {
		poolCounters.hits.Add(1)
		poolCounters.shard[shard].hits.Add(1)
		sl := *(v.(*[]byte))
		return Block{data: sl[:n], n: n, region: nextRegion(), pool: int8(c) + 1, shard: int8(shard)}
	}
	sl := make([]byte, 1<<(minPoolBits+c))
	return Block{data: sl[:n], n: n, region: nextRegion(), pool: int8(c) + 1, shard: int8(shard)}
}

// PutPooled returns a block obtained from GetPooled to the size class
// of its home shard. It is a no-op for any other block (plain,
// virtual, or a Slice view), so release sites can call it
// unconditionally.
func PutPooled(b Block) {
	if b.pool == 0 || b.data == nil {
		return
	}
	sl := b.data[:cap(b.data)]
	poolPressure.inUse.Add(-(int64(1) << (minPoolBits + int(b.pool) - 1)))
	poolCounters.shard[b.shard].inUse.Add(-(int64(1) << (minPoolBits + int(b.pool) - 1)))
	poolCounters.puts.Add(1)
	poolCounters.shard[b.shard].puts.Add(1)
	blockPools[b.shard][b.pool-1].Put(&sl)
}
