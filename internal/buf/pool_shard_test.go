package buf

import (
	"fmt"
	"sync"
	"testing"
)

// TestPoolShardsIndependent pins the sharding contract: storage
// released from rank r's block goes back to r's shard, so a different
// shard's next Get cannot be served by it.
func TestPoolShardsIndependent(t *testing.T) {
	const n = 4 << 10
	// Drain both shards of this class so the test starts from empty
	// free lists (earlier tests may have left storage behind).
	for shard := 0; shard < PoolShards; shard++ {
		for i := 0; i < 64; i++ {
			if b := GetPooledFor(shard, n); b.pool == 0 {
				t.Fatalf("pooled range request fell back to plain alloc")
			}
		}
	}

	a := GetPooledFor(1, n)
	if got := int(a.shard); got != 1 {
		t.Fatalf("shard = %d, want 1", got)
	}
	mark := a.Bytes()
	mark[0] = 0xEE
	PutPooled(a)

	// Shard 2 must not see shard 1's storage.
	c := GetPooledFor(2, n)
	if c.shard != 2 {
		t.Fatalf("shard = %d, want 2", c.shard)
	}
	if len(c.Bytes()) > 0 && &c.Bytes()[0] == &mark[0] {
		t.Fatal("shard 2 was served shard 1's released storage")
	}

	// Shard 1 gets its storage back. Under the race detector sync.Pool
	// drops a random fraction of Puts by design, so the exact-recycling
	// assertion only holds in plain builds; the isolation assertions
	// above hold either way (a drop can never serve foreign storage).
	d := GetPooledFor(1, n)
	if !raceEnabled && (len(d.Bytes()) == 0 || &d.Bytes()[0] != &mark[0]) {
		t.Fatal("shard 1 did not recycle its own released storage")
	}
	PutPooled(c)
	PutPooled(d)
}

// TestPoolShardRankMapping pins the modulo mapping: ranks beyond
// PoolShards wrap, negative ranks (no rank context) use shard 0.
func TestPoolShardRankMapping(t *testing.T) {
	b := GetPooledFor(PoolShards+3, 1<<10)
	if b.shard != 3 {
		t.Fatalf("rank %d mapped to shard %d, want 3", PoolShards+3, b.shard)
	}
	PutPooled(b)
	z := GetPooledFor(-5, 1<<10)
	if z.shard != 0 {
		t.Fatalf("negative rank mapped to shard %d, want 0", z.shard)
	}
	PutPooled(z)
}

// TestPoolCrossShardRelease pins the home-shard contract across
// goroutines: a block drawn from rank r's shard and released on a
// goroutine serving a different rank (the receive-completion shape of
// internal/mpi) must return its storage to shard r — and the release
// must be attributed to shard r in the per-shard stats.
func TestPoolCrossShardRelease(t *testing.T) {
	const n = 8 << 10
	// Drain the two shards of this class so recycling is observable.
	for _, shard := range []int{3, 5} {
		for i := 0; i < 64; i++ {
			GetPooledFor(shard, n)
		}
	}
	before := PoolStatsSnapshot()
	b := GetPooledFor(3, n)
	mark := b.Bytes()
	mark[0] = 0xAB

	// Release on a goroutine that is churning a different shard, as a
	// peer rank's receive completion would.
	done := make(chan struct{})
	go func() {
		defer close(done)
		other := GetPooledFor(5, n)
		PutPooled(b) // cross-shard release of shard 3's block
		PutPooled(other)
	}()
	<-done

	d := PoolStatsSnapshot().Sub(before)
	if d.Shards[3].Puts != 1 {
		t.Errorf("shard 3 puts = %d, want 1 (cross-shard release must be attributed home)", d.Shards[3].Puts)
	}
	if d.Shards[5].Puts != 1 {
		t.Errorf("shard 5 puts = %d, want 1", d.Shards[5].Puts)
	}
	// Shard 3 recycles its own storage; shard 5 must not see it.
	c := GetPooledFor(5, n)
	if len(c.Bytes()) > 0 && &c.Bytes()[0] == &mark[0] {
		t.Fatal("shard 5 was served shard 3's released storage")
	}
	// Exact recycling is only deterministic in plain builds: under the
	// race detector sync.Pool drops a random fraction of Puts by design.
	d3 := GetPooledFor(3, n)
	if !raceEnabled && (len(d3.Bytes()) == 0 || &d3.Bytes()[0] != &mark[0]) {
		t.Fatal("shard 3 did not recycle the cross-shard-released storage")
	}
	PutPooled(c)
	PutPooled(d3)
}

// TestPoolShardStatsBreakdown pins that the per-shard counters sum to
// the whole-pool totals and attribute gets to the drawing shard.
func TestPoolShardStatsBreakdown(t *testing.T) {
	before := PoolStatsSnapshot()
	a := GetPooledFor(1, 4<<10)
	b := GetPooledFor(6, 4<<10)
	PutPooled(a)
	PutPooled(b)
	d := PoolStatsSnapshot().Sub(before)
	if d.Shards[1].Gets != 1 || d.Shards[6].Gets != 1 {
		t.Errorf("shard gets = %+v, want one each on shards 1 and 6", d.Shards)
	}
	var gets, hits, puts int64
	for _, s := range d.Shards {
		gets += s.Gets
		hits += s.Hits
		puts += s.Puts
	}
	if gets != d.Gets || hits != d.Hits || puts != d.Puts {
		t.Errorf("per-shard sums (%d/%d/%d) disagree with totals (%d/%d/%d)",
			gets, hits, puts, d.Gets, d.Hits, d.Puts)
	}
}

// BenchmarkPoolContention measures the free-list contention the
// per-rank shards remove: many rank goroutines churning transit-sized
// blocks through one shared shard versus through their own shards.
func BenchmarkPoolContention(b *testing.B) {
	const blockSize = 64 << 10
	for _, ranks := range []int{2, 8} {
		for _, mode := range []string{"singleShard", "perRankShard"} {
			b.Run(fmt.Sprintf("%s/ranks%d", mode, ranks), func(b *testing.B) {
				b.SetBytes(blockSize)
				var wg sync.WaitGroup
				per := b.N/ranks + 1
				b.ResetTimer()
				for r := 0; r < ranks; r++ {
					shard := 0
					if mode == "perRankShard" {
						shard = r
					}
					wg.Add(1)
					go func(shard int) {
						defer wg.Done()
						for i := 0; i < per; i++ {
							blk := GetPooledFor(shard, blockSize)
							blk.Bytes()[0] = byte(i) // touch so the Get is not dead
							PutPooled(blk)
						}
					}(shard)
				}
				wg.Wait()
			})
		}
	}
}
