// Package buf provides the byte-buffer abstraction used throughout the
// repository: a Block is a fixed-length run of bytes that is either
// *real* (backed by a []byte that data actually moves through) or
// *virtual* (length-only, used to model multi-gigabyte payloads without
// materialising them).
//
// Every copy routine in the runtime goes through Block so that the
// protocol code paths — gather loops, pack engines, chunked internal
// buffers — execute identically for real and virtual payloads; only the
// final memmove is elided for virtual ones. Tests pin the equivalence
// of the two modes (see buf_test.go and the integration tests in
// internal/mpi).
//
// The paper (§3.2) allocates send/receive buffers with 64-byte
// alignment outside the timing loop and zeroes them to force page
// instantiation. AllocAligned mirrors that protocol: it over-allocates
// and zeroes eagerly. Go's allocator already aligns large slices to at
// least a cache line on the platforms we target, so alignment is
// best-effort rather than guaranteed, which is sufficient for a
// simulated fabric.
package buf

import (
	"errors"
	"fmt"
	"sync/atomic"
	"unsafe"
)

// CacheLine is the alignment the paper requests for all message
// buffers (64 bytes on every machine in the study).
const CacheLine = 64

// Region identifies the allocation a block belongs to. The cache model
// (internal/memsim) tracks warmth per region, so two slices of the same
// allocation share cache state while distinct allocations do not.
type Region uint64

var regionCounter atomic.Uint64

func nextRegion() Region { return Region(regionCounter.Add(1)) }

// Block is a fixed-length byte buffer, real or virtual.
//
// The zero value is an empty real block.
type Block struct {
	data   []byte // nil iff virtual and n > 0
	n      int
	region Region
	// pool is 1+class when the backing storage came from the
	// size-classed pool (see pool.go) and this Block is the handle
	// that may return it; 0 otherwise. Slices clear it so only the
	// original handle can release.
	pool int8
	// shard is the pool shard the backing storage belongs to;
	// meaningful only when pool != 0.
	shard int8
}

// Alloc returns a real zeroed block of n bytes.
func Alloc(n int) Block {
	if n < 0 {
		panic("buf: negative length")
	}
	return Block{data: make([]byte, n), n: n, region: nextRegion()}
}

// AllocAligned returns a real zeroed block of n bytes whose backing
// storage was over-allocated by one cache line, mirroring the paper's
// 64-byte-aligned allocation protocol. The returned block is eagerly
// zeroed (it comes from make, which zeroes), so page instantiation is
// outside any timing loop that uses it.
func AllocAligned(n int) Block {
	if n < 0 {
		panic("buf: negative length")
	}
	backing := make([]byte, n+CacheLine)
	return Block{data: backing[:n:n], n: n, region: nextRegion()}
}

// Virtual returns a virtual block of n bytes. It has a length but no
// storage; copies involving it are counted but not performed.
func Virtual(n int) Block {
	if n < 0 {
		panic("buf: negative length")
	}
	return Block{data: nil, n: n, region: nextRegion()}
}

// FromBytes wraps an existing slice as a real block. The block aliases
// the slice; writes through the block are visible to the caller.
func FromBytes(b []byte) Block {
	return Block{data: b, n: len(b), region: nextRegion()}
}

// Region returns the allocation identity of the block. Sub-blocks made
// with Slice keep their parent's region.
func (b Block) Region() Region { return b.region }

// Len reports the block length in bytes.
func (b Block) Len() int { return b.n }

// IsVirtual reports whether the block has no backing storage.
func (b Block) IsVirtual() bool { return b.data == nil && b.n > 0 }

// Bytes returns the backing slice, or nil for a virtual block.
func (b Block) Bytes() []byte { return b.data }

// Slice returns the sub-block [off, off+n). It panics if the range is
// out of bounds, matching slice semantics.
func (b Block) Slice(off, n int) Block {
	if off < 0 || n < 0 || off+n > b.n {
		panic(fmt.Sprintf("buf: slice [%d:%d] out of range of block of %d bytes", off, off+n, b.n))
	}
	if b.IsVirtual() {
		return Block{data: nil, n: n, region: b.region}
	}
	return Block{data: b.data[off : off+n : off+n], n: n, region: b.region}
}

// Truncate returns the block shortened to n bytes from its start,
// keeping its pool identity: unlike a Slice view, the result can still
// release the backing storage through PutPooled. The fabric uses it
// for truncation faults on pooled transit payloads.
func (b Block) Truncate(n int) Block {
	if n < 0 || n > b.n {
		panic(fmt.Sprintf("buf: truncate to %d bytes of block of %d bytes", n, b.n))
	}
	if b.IsVirtual() {
		return Block{data: nil, n: n, region: b.region}
	}
	t := b
	t.data = b.data[:n]
	t.n = n
	return t
}

// Zero clears a real block; it is a no-op for virtual blocks.
func (b Block) Zero() {
	for i := range b.data {
		b.data[i] = 0
	}
}

// ErrSizeMismatch is returned by CopyTo when lengths differ.
var ErrSizeMismatch = errors.New("buf: source and destination lengths differ")

// Copy copies min(len(dst), len(src)) bytes from src to dst and
// returns the number of bytes logically transferred. If either side is
// virtual the move is counted but not performed.
func Copy(dst, src Block) int {
	n := dst.n
	if src.n < n {
		n = src.n
	}
	if dst.data != nil && src.data != nil {
		copy(dst.data[:n], src.data[:n])
	}
	return n
}

// CopyAt copies n bytes from src[srcOff:] to dst[dstOff:]. Bounds are
// checked; virtual participants skip the physical move.
func CopyAt(dst Block, dstOff int, src Block, srcOff, n int) int {
	if n < 0 || dstOff < 0 || srcOff < 0 || dstOff+n > dst.n || srcOff+n > src.n {
		panic(fmt.Sprintf("buf: CopyAt out of range: dst[%d:%d] of %d, src[%d:%d] of %d",
			dstOff, dstOff+n, dst.n, srcOff, srcOff+n, src.n))
	}
	if dst.data != nil && src.data != nil {
		copy(dst.data[dstOff:dstOff+n], src.data[srcOff:srcOff+n])
	}
	return n
}

// FillPattern writes a deterministic byte pattern derived from seed
// into a real block; virtual blocks are untouched. The pattern is
// position-dependent so that tests detect both missing and misplaced
// bytes.
func (b Block) FillPattern(seed byte) {
	for i := range b.data {
		b.data[i] = patternByte(seed, i)
	}
}

// VerifyPattern checks that a real block holds exactly the pattern
// FillPattern(seed) would write. Virtual blocks verify trivially.
func (b Block) VerifyPattern(seed byte) error {
	for i, got := range b.data {
		if want := patternByte(seed, i); got != want {
			return fmt.Errorf("buf: pattern mismatch at byte %d: got %#x want %#x", i, got, want)
		}
	}
	return nil
}

// patternByte is the deterministic fill function shared by FillPattern
// and VerifyPattern.
func patternByte(seed byte, i int) byte {
	return seed ^ byte(i) ^ byte(i>>8)*31 ^ byte(i>>16)*17
}

// Overlaps reports whether two real blocks share any backing bytes —
// the aliasing check fused transfer engines use before copying between
// two layouts in one pass (a self-send through aliased buffers must
// take the staged path). Virtual or empty blocks never overlap.
func Overlaps(a, b Block) bool {
	if a.data == nil || b.data == nil || a.n == 0 || b.n == 0 {
		return false
	}
	aLo := uintptr(unsafe.Pointer(&a.data[0]))
	bLo := uintptr(unsafe.Pointer(&b.data[0]))
	aHi := aLo + uintptr(a.n)
	bHi := bLo + uintptr(b.n)
	return aLo < bHi && bLo < aHi
}

// Equal reports whether two real blocks have identical contents.
// If either block is virtual, Equal compares lengths only.
func Equal(a, b Block) bool {
	if a.n != b.n {
		return false
	}
	if a.data == nil || b.data == nil {
		return true
	}
	for i := range a.data {
		if a.data[i] != b.data[i] {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer for diagnostics.
func (b Block) String() string {
	kind := "real"
	if b.IsVirtual() {
		kind = "virtual"
	}
	return fmt.Sprintf("buf.Block{%s, %d bytes}", kind, b.n)
}
