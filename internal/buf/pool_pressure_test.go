package buf

import "testing"

// TestPoolPressureRatio pins the occupancy-ratio gauge behind the
// adaptive eager limit: 0 with no cap, clamped to [0,1] otherwise.
func TestPoolPressureRatio(t *testing.T) {
	old := SetPoolCap(0)
	defer SetPoolCap(old)
	if r := PoolPressureRatio(); r != 0 {
		t.Fatalf("uncapped ratio %v, want 0", r)
	}

	base := PoolInUse()
	SetPoolCap(base + 4096)
	b := GetPooledFor(0, 1024) // class-rounded to 1024
	if got := PoolInUse() - base; got != 1024 {
		t.Fatalf("inUse delta %d, want 1024", got)
	}
	r := PoolPressureRatio()
	want := float64(base+1024) / float64(base+4096)
	if r < want-1e-9 || r > want+1e-9 {
		t.Fatalf("ratio %v, want %v", r, want)
	}
	PutPooled(b)
	SetPoolCap(1) // any live residue clamps to 1
	if r := PoolPressureRatio(); r < 0 || r > 1 {
		t.Fatalf("ratio %v outside [0,1]", r)
	}
}

// TestPoolShardInUseGauge pins the per-shard occupancy breakdown: a
// checkout is charged to the drawing shard and released at the home
// shard, wherever the release runs.
func TestPoolShardInUseGauge(t *testing.T) {
	const rank = 3 // shard 3
	before := PoolStatsSnapshot()
	b := GetPooledFor(rank, 2048)
	mid := PoolStatsSnapshot()
	if d := mid.Shards[rank].InUseBytes - before.Shards[rank].InUseBytes; d != 2048 {
		t.Fatalf("shard %d inUse delta %d after get, want 2048", rank, d)
	}
	PutPooled(b)
	after := PoolStatsSnapshot()
	if d := after.Shards[rank].InUseBytes - before.Shards[rank].InUseBytes; d != 0 {
		t.Fatalf("shard %d inUse delta %d after put, want 0", rank, d)
	}
}

// TestEagerAdaptationCounter pins the counter plumbing.
func TestEagerAdaptationCounter(t *testing.T) {
	before := PoolStatsSnapshot().EagerAdaptations
	NoteEagerAdaptation()
	if d := PoolStatsSnapshot().EagerAdaptations - before; d != 1 {
		t.Fatalf("EagerAdaptations delta %d, want 1", d)
	}
}
