package buf

import (
	"math/rand"
	"testing"
)

func TestChecksumChunkInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	data := make([]byte, 4096+5)
	rng.Read(data)

	var whole Checksum
	whole.Write(data)
	want := whole.Sum64()

	// Any segmentation of the same stream must fold to the same sum,
	// including cuts that land mid-word and single-byte dribbles.
	for trial := 0; trial < 50; trial++ {
		var c Checksum
		for p := data; len(p) > 0; {
			k := 1 + rng.Intn(len(p))
			c.Write(p[:k])
			p = p[k:]
		}
		if c.Sum64() != want {
			t.Fatalf("trial %d: segmented sum %#x != whole %#x", trial, c.Sum64(), want)
		}
		if c.Len() != int64(len(data)) {
			t.Fatalf("trial %d: Len %d != %d", trial, c.Len(), len(data))
		}
	}
}

func TestChecksumBindsTailAndLength(t *testing.T) {
	sum := func(p []byte) uint64 {
		var c Checksum
		c.Write(p)
		return c.Sum64()
	}
	if sum([]byte{1}) == sum([]byte{1, 0}) {
		t.Fatal("trailing zero byte not bound")
	}
	if sum([]byte{0}) == sum(nil) {
		t.Fatal("single zero byte collides with empty stream")
	}
	if sum([]byte{1, 2, 3}) == sum([]byte{1, 2, 4}) {
		t.Fatal("tail byte not bound")
	}
}

func TestChecksumSum64NonDestructive(t *testing.T) {
	var c Checksum
	c.Write([]byte{1, 2, 3})
	s1 := c.Sum64()
	if c.Sum64() != s1 {
		t.Fatal("Sum64 mutated state")
	}
	c.Write([]byte{4, 5})
	var d Checksum
	d.Write([]byte{1, 2, 3, 4, 5})
	if c.Sum64() != d.Sum64() {
		t.Fatal("writes after Sum64 diverge from a straight stream")
	}
}

func TestChecksumVirtualSymmetry(t *testing.T) {
	// Both ends skipping the same virtual length agree; length is bound.
	var a, b Checksum
	a.SkipVirtual(100)
	b.SkipVirtual(60)
	b.SkipVirtual(40)
	if a.Sum64() != b.Sum64() {
		t.Fatal("split virtual skips disagree")
	}
	var c Checksum
	c.SkipVirtual(99)
	if a.Sum64() == c.Sum64() {
		t.Fatal("virtual length not bound")
	}
	if ChecksumOf(Virtual(100)) != a.Sum64() {
		t.Fatal("ChecksumOf(virtual) disagrees with SkipVirtual")
	}
}

func TestChecksumZeroAlloc(t *testing.T) {
	data := make([]byte, 1024)
	var c Checksum
	allocs := testing.AllocsPerRun(100, func() {
		c.Reset()
		c.Write(data[:7])
		c.Write(data[7:])
		_ = c.Sum64()
	})
	if allocs != 0 {
		t.Fatalf("checksum path allocates %.1f times per run", allocs)
	}
}
