//go:build !race

package buf

// raceEnabled reports whether the race detector instruments this
// build. Under it, sync.Pool deliberately drops a random fraction of
// Puts, so tests asserting that a released block's exact storage comes
// back must skip that assertion.
const raceEnabled = false
