package guidelines

import (
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/memsim"
	"repro/internal/perfmodel"
)

// FuzzGuidelines draws random committed vector geometries and sizes,
// measures the typed send and the compiled pack+send pipeline on the
// virtual clock, and asserts the typed-send-vs-pack+send guideline in its
// structural form: after the observed hierarchy has watched both
// sides, the self-tuned recommender must never keep the typed send
// when the observation says it lost to pack+send (and conversely must
// keep it under GoalBalanced when it won). The raw bound itself is
// allowed to fail — that is the paper's finding and the baseline's
// waiver list — but the closed loop must make acting on a violation
// impossible.
func FuzzGuidelines(f *testing.F) {
	// Known-tight cells: the knl-impi 8 KiB waivers, the canonical
	// every-other-double, a dense wide-block layout, and a rendezvous
	// cell.
	f.Add(uint8(2), uint16(1024), uint8(1), uint8(2)) // knl alt 8 KiB (waived violation)
	f.Add(uint8(2), uint16(128), uint8(8), uint8(16)) // knl block8 8 KiB (waived violation)
	f.Add(uint8(0), uint16(1024), uint8(1), uint8(2)) // skx alt 8 KiB
	f.Add(uint8(1), uint16(4096), uint8(4), uint8(8)) // ls5 128 KiB rendezvous
	f.Add(uint8(0), uint16(8192), uint8(2), uint8(3)) // skx dense-ish large

	profiles := []string{"skx-impi", "ls5-cray", "knl-impi"}
	f.Fuzz(func(t *testing.T, profSel uint8, count uint16, blockLen, stride uint8) {
		w := core.Workload{
			Count:    int(count%8192) + 1,
			BlockLen: int(blockLen%64) + 1,
		}
		w.Stride = w.BlockLen + int(stride%64)
		if err := w.Validate(); err != nil {
			t.Skip()
		}
		if w.Bytes() > 8<<20 {
			t.Skip() // keep the corpus laptop-sized
		}
		p, err := perfmodel.ByName(profiles[int(profSel)%len(profiles)])
		if err != nil {
			t.Fatal(err)
		}
		opt := harness.Options{Reps: 2, FlushCache: true, OutlierSigma: 0}
		typed, err := harness.Measure(p, core.VectorType, w, opt)
		if err != nil {
			t.Fatal(err)
		}
		packedC, err := harness.Measure(p, core.PackCompiled, w, opt)
		if err != nil {
			t.Fatal(err)
		}

		o := memsim.NewObservedHierarchy(&p.Mem)
		for i := 0; i < memsim.MinObservations; i++ {
			o.Observe(memsim.PathTypedSend, w.Bytes(), typed.Time())
			o.Observe(memsim.PathPackedSend, w.Bytes(), packedC.Time())
		}
		rec := core.RecommendTuned(w.Bytes(), false, core.GoalFastest, p, o)

		const tol = 1.05
		if rec.Scheme == core.VectorType && typed.Time() > packedC.Time()*tol {
			t.Errorf("%s %+v (%d B): typed measured %.3g s, pack+send %.3g s (ratio %.3f), yet the self-tuned recommender kept the typed send",
				p.Name, w, w.Bytes(), typed.Time(), packedC.Time(), typed.Time()/packedC.Time())
		}
		// And the mirror: when typed is observed to win clearly, the
		// balanced recommendation must not abandon the user-friendly
		// datatype.
		if typed.Time()*tol < packedC.Time() {
			bal := core.RecommendTuned(w.Bytes(), false, core.GoalBalanced, p, o)
			if bal.Scheme == core.PackCompiled {
				t.Errorf("%s %+v: typed observed %.3g s beats compiled pack %.3g s but balanced self-tuning packed anyway",
					p.Name, w, typed.Time(), packedC.Time())
			}
		}
	})
}
