package guidelines

import (
	"bufio"
	_ "embed"
	"fmt"
	"strconv"
	"strings"
)

// BaselineSlack is how much a waived cell's ratio may worsen before
// the gate fails it again: a waiver documents a known magnitude, not a
// blank cheque.
const BaselineSlack = 1.10

//go:embed baseline.txt
var baselineRaw string

// Baseline is the checked-in set of known/waived violations, keyed by
// cell (Cell.Key) with the ratio each was waived at.
type Baseline struct {
	waived map[string]float64
}

// ParseBaseline reads the waiver format: one `key ratio` pair per
// line, `#` comments, blank lines ignored.
func ParseBaseline(s string) (*Baseline, error) {
	b := &Baseline{waived: make(map[string]float64)}
	sc := bufio.NewScanner(strings.NewReader(s))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("guidelines: baseline line %d: want `key ratio`, have %q", lineNo, line)
		}
		ratio, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || ratio <= 0 {
			return nil, fmt.Errorf("guidelines: baseline line %d: bad ratio %q", lineNo, fields[1])
		}
		b.waived[fields[0]] = ratio
	}
	return b, sc.Err()
}

// LoadBaseline returns the embedded checked-in baseline.
func LoadBaseline() *Baseline {
	b, err := ParseBaseline(baselineRaw)
	if err != nil {
		// The embedded file is part of the build; a parse failure is a
		// programming error, not an input error.
		panic(err)
	}
	return b
}

// Waived returns the ratio a cell was waived at, if present.
func (b *Baseline) Waived(key string) (float64, bool) {
	r, ok := b.waived[key]
	return r, ok
}

// Len returns the waiver count.
func (b *Baseline) Len() int { return len(b.waived) }

// Gate diffs a report against the baseline: every violated cell must
// either appear in the baseline with a ratio no more than BaselineSlack
// worse than recorded, or it is a new violation. This is the CI
// failure condition.
func (b *Baseline) Gate(rp *Report) []Result {
	var fresh []Result
	for _, v := range rp.Violations() {
		if waived, ok := b.Waived(v.Key()); ok && v.Ratio <= waived*BaselineSlack {
			continue
		}
		fresh = append(fresh, v)
	}
	return fresh
}
