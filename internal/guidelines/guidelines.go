// Package guidelines encodes Hunold/Träff/Carpen-Amarie-style
// performance guidelines ("MPI Derived Datatypes: Performance
// Expectations and Status Quo") as executable properties over the
// virtual clock: each rule bounds one engine by an alternative that
// moves the same bytes (a typed send by pack+send, a collective by its
// point-to-point decomposition, the recommender's choice by every
// alternative scheme), and a sweep executes both sides of every rule
// on simnet across a (layout × size × scheme × installation) grid and
// reports each cell's measured ratio. Violations — cells whose
// left-hand side exceeds tolerance × right-hand side — come back as
// structured records with PlanStats attribution; the baseline file
// (baseline.txt) waives the violations that are expected by design,
// the paper's own finding that derived-datatype sends degrade at large
// sizes (§4.1), so CI can fail on *new* violations only.
package guidelines

import (
	"fmt"
	"sort"

	"repro/internal/datatype"
)

// Rule identifies one performance guideline.
type Rule int

// The rule table. Every rule is a bound "Lhs ≤ tolerance·Rhs" over
// measured virtual-clock times of the same payload.
const (
	// TypedVsPack: a derived-datatype send must not lose to MPI_Pack
	// of the same type followed by a contiguous send — the original
	// Hunold/Träff guideline, and the one the paper shows real MPIs
	// violate at large sizes.
	TypedVsPack Rule = iota
	// SendvVsStaged: the fused zero-copy rendezvous (sendv) must not
	// lose to the staged typed send it replaces.
	SendvVsStaged
	// PipelinedVsSerial: the software-pipelined chunk engine at slot
	// depth ≥ 2 must not lose to the serial chunk loop.
	PipelinedVsSerial
	// BcastVsLinearFan: BcastType must not lose to a linear fan of
	// typed sends from the root.
	BcastVsLinearFan
	// AllgatherVsGatherBcast: AllgatherType must not lose to
	// GatherType followed by a contiguous broadcast of the slab.
	AllgatherVsGatherBcast
	// CollectiveVsP2P: a typed collective (GatherType) must not lose
	// to its explicit point-to-point decomposition (pack, send, unpack
	// per leg).
	CollectiveVsP2P
	// RecommenderMinimal: the scheme Recommend picks under GoalFastest
	// must not lose to any alternative scheme on the measured grid.
	RecommenderMinimal
	// NormalizedVsRaw: a type whose program the Commit-time normalizer
	// canonicalised must never price slower than its raw table-walk
	// program on the identical payload — the normalization pass may
	// only help.
	NormalizedVsRaw

	numRules
)

var ruleNames = [numRules]string{
	TypedVsPack:            "typed<=pack+send",
	SendvVsStaged:          "sendv<=staged",
	PipelinedVsSerial:      "pipelined<=serial",
	BcastVsLinearFan:       "bcast<=linear-fan",
	AllgatherVsGatherBcast: "allgather<=gather+bcast",
	CollectiveVsP2P:        "collective<=p2p",
	RecommenderMinimal:     "recommended<=alternatives",
	NormalizedVsRaw:        "normalized<=raw",
}

func (r Rule) String() string {
	if r < 0 || r >= numRules {
		return fmt.Sprintf("rule(%d)", int(r))
	}
	return ruleNames[r]
}

// Rules lists every rule in table order.
func Rules() []Rule {
	out := make([]Rule, numRules)
	for i := range out {
		out[i] = Rule(i)
	}
	return out
}

// Cell locates one measured property instance on the sweep grid.
type Cell struct {
	Rule    Rule
	Profile string // installation name
	Layout  string // layout spec name
	Bytes   int64  // per-rank payload bytes
	Ranks   int    // world size of the measurement
}

// Key is the cell's stable identity, the baseline-file key.
func (c Cell) Key() string {
	return fmt.Sprintf("%s|%s|%s|%d|%d", c.Rule, c.Profile, c.Layout, c.Bytes, c.Ranks)
}

// Result is one executed property: the bound's two measured sides and
// the verdict.
type Result struct {
	Cell
	// LhsName and RhsName say which engines were measured; Lhs and Rhs
	// are their virtual-clock seconds per operation.
	LhsName, RhsName string
	Lhs, Rhs         float64
	// Ratio is Lhs/Rhs; the rule demands Ratio ≤ tolerance.
	Ratio float64
	// Violated is true when the bound failed at the sweep's tolerance.
	Violated bool
	// Plan attributes the Lhs measurement: which pack-engine tier
	// moved the bytes and whether the transfers were fused or staged.
	Plan datatype.PlanStats
}

// Attribution renders the PlanStats split the violation tables show.
func (r Result) Attribution() string {
	return fmt.Sprintf("fused %d/%dB staged %d/%dB pipelined %d cursor %d",
		r.Plan.FusedOps, r.Plan.FusedBytes, r.Plan.StagedOps, r.Plan.StagedBytes,
		r.Plan.PipelinedOps, r.Plan.CursorOps)
}

func (r Result) String() string {
	verdict := "ok"
	if r.Violated {
		verdict = "VIOLATED"
	}
	return fmt.Sprintf("%-26s %-9s %-8s %10d B  ranks %d  %s %.3g s vs %s %.3g s  ratio %.3f  %s",
		r.Rule, r.Profile, r.Layout, r.Bytes, r.Ranks, r.LhsName, r.Lhs, r.RhsName, r.Rhs, r.Ratio, verdict)
}

// Report is the outcome of one sweep.
type Report struct {
	Tolerance float64
	Results   []Result
}

// Violations returns the violated cells, most severe first.
func (rp *Report) Violations() []Result {
	var out []Result
	for _, r := range rp.Results {
		if r.Violated {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ratio > out[j].Ratio })
	return out
}

// ByRule groups the results in rule order.
func (rp *Report) ByRule() map[Rule][]Result {
	out := make(map[Rule][]Result)
	for _, r := range rp.Results {
		out[r.Rule] = append(out[r.Rule], r)
	}
	return out
}

// LayoutSpec is a layout family of the sweep grid: the block geometry,
// with the block count derived from each cell's payload size.
type LayoutSpec struct {
	Name     string
	BlockLen int // elements per block
	Stride   int // elements between block starts
}

// Config parameterises a sweep.
type Config struct {
	// Profiles are installation names (perfmodel registry); empty
	// means the three calibrated clusters of the acceptance grid.
	Profiles []string
	// Layouts are the layout families; empty means the canonical
	// every-other-double plus a dense 8-element-block family.
	Layouts []LayoutSpec
	// Sizes are per-rank payload bytes; empty means one eager-sized,
	// one rendezvous-sized and one large cell per family.
	Sizes []int64
	// Ranks is the collective world size (p2p rules always run on 2).
	Ranks int
	// Reps is the per-cell repetition count on the deterministic
	// virtual clock.
	Reps int
	// Tolerance is the permitted Lhs/Rhs slack before a cell counts
	// as violated.
	Tolerance float64
}

// DefaultConfig is the acceptance grid: the three calibrated
// installations, two layout families, eager through large sizes.
func DefaultConfig() Config {
	return Config{
		Profiles: []string{"skx-impi", "ls5-cray", "knl-impi"},
		Layouts: []LayoutSpec{
			{Name: "alt", BlockLen: 1, Stride: 2},
			{Name: "block8", BlockLen: 8, Stride: 16},
		},
		Sizes:     []int64{8 << 10, 256 << 10, 4 << 20},
		Ranks:     4,
		Reps:      3,
		Tolerance: 1.05,
	}
}

func (cfg Config) withDefaults() Config {
	d := DefaultConfig()
	if len(cfg.Profiles) == 0 {
		cfg.Profiles = d.Profiles
	}
	if len(cfg.Layouts) == 0 {
		cfg.Layouts = d.Layouts
	}
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = d.Sizes
	}
	if cfg.Ranks == 0 {
		cfg.Ranks = d.Ranks
	}
	if cfg.Reps == 0 {
		cfg.Reps = d.Reps
	}
	if cfg.Tolerance == 0 {
		cfg.Tolerance = d.Tolerance
	}
	return cfg
}

// Sweep executes every rule over the full grid and returns the
// report. Each p2p cell measures its schemes once through the paper's
// ping-pong harness and derives all point-to-point rules from the
// shared table; collective rules run their own bracketed worlds.
func Sweep(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rp := &Report{Tolerance: cfg.Tolerance}
	for _, name := range cfg.Profiles {
		for _, lay := range cfg.Layouts {
			for _, n := range cfg.Sizes {
				cells, err := measureCell(name, lay, n, cfg)
				if err != nil {
					return nil, fmt.Errorf("guidelines: %s/%s/%d: %w", name, lay.Name, n, err)
				}
				rp.Results = append(rp.Results, cells...)
			}
		}
	}
	for i := range rp.Results {
		r := &rp.Results[i]
		r.Ratio = ratio(r.Lhs, r.Rhs)
		r.Violated = r.Ratio > cfg.Tolerance
	}
	return rp, nil
}

// ratio returns lhs/rhs, treating a non-positive rhs (nothing
// measured) as a trivially satisfied bound.
func ratio(lhs, rhs float64) float64 {
	if rhs <= 0 {
		return 1
	}
	return lhs / rhs
}
