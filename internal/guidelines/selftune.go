package guidelines

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/memsim"
	"repro/internal/perfmodel"
)

// TunedChoice is one cell of the self-tuning demonstration: what the
// calibrated recommender picks, what the self-tuned recommender picks
// after observing the installation's measured scheme table, and how
// both choices fare against the measured best.
type TunedChoice struct {
	Profile string
	Layout  string
	Bytes   int64
	// Calibrated and Tuned are the schemes Recommend and RecommendTuned
	// pick for this cell; the time fields are those schemes' measured
	// virtual-clock seconds, and Best/BestTime the fastest scheme of
	// the measured table.
	Calibrated, Tuned, Best             core.Scheme
	CalibratedTime, TunedTime, BestTime float64
}

// Satisfied reports whether the tuned choice meets the recommender
// guideline at the given tolerance — its measured time within
// tolerance of the measured best.
func (tc TunedChoice) Satisfied(tol float64) bool {
	return tc.BestTime <= 0 || tc.TunedTime <= tc.BestTime*tol
}

// SelfTune closes the tuning loop on one installation: measure the
// point-to-point scheme table at each size, feed the typed-send and
// compiled-pack observations into a memsim.ObservedHierarchy (the same
// sink persistent operations feed at runtime), and report the
// calibrated vs self-tuned recommendation per cell. With the observed
// fits in place the tuned choice is an argmin over measured costs, so
// the recommender guideline holds by construction — including on the
// cells where the raw typed-vs-pack bound is waived.
func SelfTune(profile string, lay LayoutSpec, sizes []int64, reps int) ([]TunedChoice, error) {
	p, err := perfmodel.ByName(profile)
	if err != nil {
		return nil, err
	}
	o := memsim.NewObservedHierarchy(&p.Mem)
	opt := harness.Options{Reps: reps, FlushCache: true, OutlierSigma: 0}
	table := make(map[int64]map[core.Scheme]float64, len(sizes))
	for _, n := range sizes {
		w := workloadFor(lay, n)
		times := make(map[core.Scheme]float64, len(p2pSchemes))
		for _, s := range p2pSchemes {
			m, err := harness.Measure(p, s, w, opt)
			if err != nil {
				return nil, fmt.Errorf("self-tune %s/%s/%d: %v: %w", profile, lay.Name, n, s, err)
			}
			times[s] = m.Time()
		}
		table[n] = times
		o.Observe(memsim.PathTypedSend, w.Bytes(), times[core.VectorType])
		o.Observe(memsim.PathPackedSend, w.Bytes(), times[core.PackCompiled])
	}
	out := make([]TunedChoice, 0, len(sizes))
	for _, n := range sizes {
		w := workloadFor(lay, n)
		times := table[n]
		lookup := func(s core.Scheme) (float64, error) {
			if t, ok := times[s]; ok {
				return t, nil
			}
			m, err := harness.Measure(p, s, w, opt)
			if err != nil {
				return 0, fmt.Errorf("self-tune %s: %v: %w", profile, s, err)
			}
			times[s] = m.Time()
			return m.Time(), nil
		}
		cal := core.Recommend(w.Bytes(), false, core.GoalFastest, p)
		tuned := core.RecommendTuned(w.Bytes(), false, core.GoalFastest, p, o)
		tc := TunedChoice{
			Profile: profile, Layout: lay.Name, Bytes: w.Bytes(),
			Calibrated: cal.Scheme, Tuned: tuned.Scheme,
		}
		if tc.CalibratedTime, err = lookup(cal.Scheme); err != nil {
			return nil, err
		}
		if tc.TunedTime, err = lookup(tuned.Scheme); err != nil {
			return nil, err
		}
		tc.Best, tc.BestTime = tuned.Scheme, tc.TunedTime
		for s, t := range times {
			if t < tc.BestTime {
				tc.Best, tc.BestTime = s, t
			}
		}
		out = append(out, tc)
	}
	return out, nil
}
