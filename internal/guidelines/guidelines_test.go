package guidelines

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/memsim"
	"repro/internal/perfmodel"
)

func TestRuleAndCellFormatting(t *testing.T) {
	if got := len(Rules()); got != int(numRules) {
		t.Fatalf("Rules() has %d entries, want %d", got, numRules)
	}
	for _, r := range Rules() {
		if r.String() == "" || r.String() == fmt.Sprintf("rule(%d)", int(r)) {
			t.Errorf("rule %d has no name", int(r))
		}
	}
	c := Cell{Rule: TypedVsPack, Profile: "skx-impi", Layout: "alt", Bytes: 8192, Ranks: 2}
	if got, want := c.Key(), "typed<=pack+send|skx-impi|alt|8192|2"; got != want {
		t.Errorf("Key() = %q, want %q", got, want)
	}
}

func TestParseBaseline(t *testing.T) {
	b, err := ParseBaseline("# comment\n\nk|p|l|8|2 1.25  # trailing note\n")
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := b.Waived("k|p|l|8|2"); !ok || r != 1.25 {
		t.Errorf("Waived = %v,%v, want 1.25,true", r, ok)
	}
	if b.Len() != 1 {
		t.Errorf("Len = %d", b.Len())
	}
	for _, bad := range []string{"key-without-ratio\n", "k 0\n", "k -1\n", "k x\n", "a b c\n"} {
		if _, err := ParseBaseline(bad); err == nil {
			t.Errorf("ParseBaseline(%q) accepted", bad)
		}
	}
	// The embedded baseline must always parse.
	if LoadBaseline() == nil {
		t.Fatal("embedded baseline failed to load")
	}
}

// TestGateSyntheticViolation is the gate's negative test: an injected
// violation not in the baseline fails the gate, a waived one within
// slack passes, and a waived one that worsened past the slack fails
// again.
func TestGateSyntheticViolation(t *testing.T) {
	mk := func(ratio float64) Result {
		return Result{
			Cell:    Cell{Rule: TypedVsPack, Profile: "synthetic", Layout: "alt", Bytes: 4096, Ranks: 2},
			LhsName: "vector type", RhsName: "packing(v)",
			Lhs: ratio, Rhs: 1, Ratio: ratio, Violated: ratio > 1.05,
		}
	}
	rp := &Report{Tolerance: 1.05, Results: []Result{mk(1.5)}}

	empty, err := ParseBaseline("")
	if err != nil {
		t.Fatal(err)
	}
	if fresh := empty.Gate(rp); len(fresh) != 1 {
		t.Fatalf("synthetic violation passed an empty baseline: %v", fresh)
	}

	waived, err := ParseBaseline(mk(0).Key() + " 1.5\n")
	if err != nil {
		t.Fatal(err)
	}
	if fresh := waived.Gate(rp); len(fresh) != 0 {
		t.Fatalf("waived violation failed the gate: %v", fresh)
	}
	worse := &Report{Tolerance: 1.05, Results: []Result{mk(1.5 * BaselineSlack * 1.01)}}
	if fresh := waived.Gate(worse); len(fresh) != 1 {
		t.Fatal("violation worsened past the slack but passed the gate")
	}
	// A clean report passes any baseline.
	clean := &Report{Tolerance: 1.05, Results: []Result{mk(0.9)}}
	if fresh := empty.Gate(clean); len(fresh) != 0 {
		t.Fatalf("clean report failed the gate: %v", fresh)
	}
}

// TestSweepGate is the property suite over the full acceptance grid:
// every rule on every (profile × layout × size) cell, diffed against
// the checked-in baseline. Any new violation fails here exactly as it
// would in CI.
func TestSweepGate(t *testing.T) {
	cfg := DefaultConfig()
	if testing.Short() {
		cfg.Profiles = []string{"skx-impi"}
		cfg.Sizes = []int64{8 << 10, 1 << 20}
	}
	rp, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rp.Results) == 0 {
		t.Fatal("empty sweep")
	}
	for _, fresh := range LoadBaseline().Gate(rp) {
		t.Errorf("new violation: %s (%s)", fresh, fresh.Attribution())
	}
}

// TestSweepAtRankCounts runs the collective rules at every world size
// from 1 to 8 — the table-driven rank sweep of the property suite
// (race coverage comes from the simulated ranks' goroutines).
func TestSweepAtRankCounts(t *testing.T) {
	base := LoadBaseline()
	for ranks := 1; ranks <= 8; ranks++ {
		ranks := ranks
		t.Run(fmt.Sprintf("ranks=%d", ranks), func(t *testing.T) {
			rp, err := Sweep(Config{
				Profiles: []string{"skx-impi", "ls5-cray"},
				Layouts:  []LayoutSpec{{Name: "alt", BlockLen: 1, Stride: 2}},
				Sizes:    []int64{64 << 10},
				Ranks:    ranks,
				Reps:     2,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, fresh := range base.Gate(rp) {
				t.Errorf("new violation at %d ranks: %s", ranks, fresh)
			}
		})
	}
}

// TestTreeGateRegression pins the engine fix this verifier surfaced:
// on ls5-cray (8 KiB eager limit) a 4-rank gather of 8 KiB
// contributions must NOT run the binomial tree — the aggregated
// second-round hop (16 KiB) would fall into rendezvous and lose to
// the linear fan, the collective<=p2p violation of the original
// sweep. Installations with roomier eager limits keep the tree.
func TestTreeGateRegression(t *testing.T) {
	ls5, err := perfmodel.ByName("ls5-cray")
	if err != nil {
		t.Fatal(err)
	}
	skx, err := perfmodel.ByName("skx-impi")
	if err != nil {
		t.Fatal(err)
	}
	if got := perfmodel.TreeAggregateHop(4, 8192); got != 16384 {
		t.Errorf("TreeAggregateHop(4, 8192) = %d, want 16384", got)
	}
	if ls5.UseCollectiveTree(4, 8192) {
		t.Error("ls5-cray still trees a 4-rank 8 KiB gather (aggregated hop exceeds eager)")
	}
	if !skx.UseCollectiveTree(4, 8192) {
		t.Error("skx-impi stopped treeing a 4-rank 8 KiB gather (hops stay eager there)")
	}
	// And the measured cell itself stays clean.
	rp, err := Sweep(Config{
		Profiles: []string{"ls5-cray"},
		Layouts:  []LayoutSpec{{Name: "block8", BlockLen: 8, Stride: 16}},
		Sizes:    []int64{8 << 10},
		Ranks:    4,
		Reps:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rp.Results {
		if r.Rule == CollectiveVsP2P && r.Violated {
			t.Errorf("regressed: %s", r)
		}
	}
}

// TestSelfTunedRecommenderSatisfiesGuidelines is the closing
// acceptance property: train an observed hierarchy from the measured
// scheme table of each calibrated installation, and the self-tuned
// recommender's choice must satisfy the recommender guideline — its
// measured virtual-clock time within tolerance of the measured best —
// on every cell of the grid, including the knl-impi cells where the
// raw typed-vs-pack guideline is waived (the tuned recommender simply
// stops picking the typed send there).
func TestSelfTunedRecommenderSatisfiesGuidelines(t *testing.T) {
	const tol = 1.05
	sizes := []int64{8 << 10, 256 << 10, 4 << 20}
	lay := LayoutSpec{Name: "alt", BlockLen: 1, Stride: 2}
	for _, name := range []string{"skx-impi", "ls5-cray", "knl-impi"} {
		p, err := perfmodel.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		o := memsim.NewObservedHierarchy(&p.Mem)
		table := make(map[int64]map[core.Scheme]float64)
		opt := harness.Options{Reps: 3, FlushCache: true, OutlierSigma: 0}
		for _, n := range sizes {
			w := workloadFor(lay, n)
			times := make(map[core.Scheme]float64)
			for _, s := range p2pSchemes {
				m, err := harness.Measure(p, s, w, opt)
				if err != nil {
					t.Fatal(err)
				}
				times[s] = m.Time()
			}
			table[n] = times
			o.Observe(memsim.PathTypedSend, w.Bytes(), times[core.VectorType])
			o.Observe(memsim.PathPackedSend, w.Bytes(), times[core.PackCompiled])
		}
		for _, n := range sizes {
			w := workloadFor(lay, n)
			rec := core.RecommendTuned(w.Bytes(), false, core.GoalFastest, p, o)
			times := table[n]
			chosen, ok := times[rec.Scheme]
			if !ok {
				t.Fatalf("%s n=%d: tuned recommendation %v not in the measured table", name, n, rec.Scheme)
			}
			best := chosen
			for _, tm := range times {
				if tm < best {
					best = tm
				}
			}
			if chosen > best*tol {
				t.Errorf("%s n=%d: self-tuned choice %v measured %.3g s, best %.3g s (ratio %.3f)",
					name, n, rec.Scheme, chosen, best, chosen/best)
			}
		}
	}
}
