package guidelines

import (
	"fmt"
	"time"

	"repro/internal/buf"
	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/harness"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
)

// p2pSchemes are the point-to-point engines every cell measures once;
// all p2p rules (and the recommender bound) derive from this shared
// table.
var p2pSchemes = []core.Scheme{
	core.VectorType,
	core.PackVector,
	core.PackCompiled,
	core.Sendv,
	core.TypedPipelined,
}

// workloadFor scales a layout family to an n-byte payload.
func workloadFor(lay LayoutSpec, n int64) core.Workload {
	count := int(n / (int64(lay.BlockLen) * core.ElemSize))
	if count < 1 {
		count = 1
	}
	return core.Workload{Count: count, BlockLen: lay.BlockLen, Stride: lay.Stride}
}

// measureCell executes every rule for one (profile, layout, size) grid
// point and returns the raw results (ratio/verdict are filled by the
// sweep).
func measureCell(profile string, lay LayoutSpec, n int64, cfg Config) ([]Result, error) {
	p, err := perfmodel.ByName(profile)
	if err != nil {
		return nil, err
	}
	w := workloadFor(lay, n)
	opt := harness.Options{Reps: cfg.Reps, FlushCache: true, OutlierSigma: 0}

	times := make(map[core.Scheme]float64, len(p2pSchemes))
	plans := make(map[core.Scheme]datatype.PlanStats, len(p2pSchemes))
	for _, s := range p2pSchemes {
		m, err := harness.Measure(p, s, w, opt)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", s, err)
		}
		times[s] = m.Time()
		plans[s] = m.PlanStats
	}

	cell := func(rule Rule, ranks int) Cell {
		return Cell{Rule: rule, Profile: profile, Layout: lay.Name, Bytes: w.Bytes(), Ranks: ranks}
	}
	var out []Result

	// Point-to-point rules, straight off the scheme table.
	out = append(out, Result{
		Cell:    cell(TypedVsPack, 2),
		LhsName: core.VectorType.String(), RhsName: core.PackVector.String(),
		Lhs: times[core.VectorType], Rhs: times[core.PackVector],
		Plan: plans[core.VectorType],
	})
	out = append(out, Result{
		Cell:    cell(SendvVsStaged, 2),
		LhsName: core.Sendv.String(), RhsName: core.VectorType.String(),
		Lhs: times[core.Sendv], Rhs: times[core.VectorType],
		Plan: plans[core.Sendv],
	})
	if p.PipelineDepth() >= 2 {
		out = append(out, Result{
			Cell:    cell(PipelinedVsSerial, 2),
			LhsName: core.TypedPipelined.String(), RhsName: core.VectorType.String(),
			Lhs: times[core.TypedPipelined], Rhs: times[core.VectorType],
			Plan: plans[core.TypedPipelined],
		})
	}

	// Recommender bound: the picked scheme against the measured best.
	rec := core.Recommend(w.Bytes(), false, core.GoalFastest, p)
	recTime, ok := times[rec.Scheme]
	if !ok {
		m, err := harness.Measure(p, rec.Scheme, w, opt)
		if err != nil {
			return nil, fmt.Errorf("recommended %v: %w", rec.Scheme, err)
		}
		recTime = m.Time()
		times[rec.Scheme] = recTime
		plans[rec.Scheme] = m.PlanStats
	}
	best := rec.Scheme
	for s, t := range times {
		if t < times[best] {
			best = s
		}
	}
	out = append(out, Result{
		Cell:    cell(RecommenderMinimal, 2),
		LhsName: rec.Scheme.String(), RhsName: "best(" + best.String() + ")",
		Lhs: recTime, Rhs: times[best],
		Plan: plans[rec.Scheme],
	})

	// Normalizer bound: the canonicalised nested layout against its raw
	// table-walk program on the identical payload.
	norm, err := measureNormalized(p, lay, n, cfg)
	if err != nil {
		return nil, err
	}
	norm.Profile, norm.Layout = profile, lay.Name
	out = append(out, norm)

	// Collective rules run their own bracketed worlds.
	colls, err := measureCollectives(p, w, cfg)
	if err != nil {
		return nil, err
	}
	for _, cr := range colls {
		cr.Profile, cr.Layout = profile, lay.Name
		out = append(out, cr)
	}
	return out, nil
}

// measureNormalized executes the NormalizedVsRaw rule for one grid
// point: an hvector-of-vector nesting of the layout family — the shape
// the Commit-time normalizer collapses into a canonical strided block —
// is sent through the software-pipelined typed send (SendpType, the
// engine whose slot ring the block kernels fill) with the normalizer on
// (Lhs) and off (Rhs) over the virtual clock. Both runs move identical
// bytes through identical protocol paths; only the compiled program
// differs, so the canonicalised side must never price slower.
func measureNormalized(p *perfmodel.Profile, lay LayoutSpec, n int64, cfg Config) (Result, error) {
	const innerRuns, tag = 8, 7
	rowBytes := int64(innerRuns * lay.BlockLen * 8)
	rows := n / rowBytes
	if rows < 2 {
		rows = 2
	}
	run := func(on bool) (float64, datatype.PlanStats, error) {
		prev := datatype.NormalizeEnabled()
		datatype.SetNormalize(on)
		defer datatype.SetNormalize(prev)
		var secs float64
		var plan datatype.PlanStats
		err := mpi.Run(2, mpi.Options{Profile: p, WallLimit: 2 * time.Minute}, func(c *mpi.Comm) error {
			inner, err := datatype.Vector(innerRuns, lay.BlockLen, lay.Stride, datatype.Float64)
			if err != nil {
				return err
			}
			// The +32 pad breaks the inner continuation, so the
			// flattener emits the irregular table the normalizer
			// collapses (a continuation-stride hvector stays regular
			// and never reaches the pass).
			ty, err := datatype.Hvector(int(rows), 1, inner.TrueExtent()+32, inner)
			if err != nil {
				return err
			}
			if err := ty.Commit(); err != nil {
				return err
			}
			b := buf.Alloc(int(ty.Extent()))
			if c.Rank() == 0 {
				b.FillPattern(1)
			}
			c.Barrier()
			before := datatype.PlanStatsSnapshot()
			t0 := c.Wtime()
			for rep := 0; rep < cfg.Reps; rep++ {
				if c.Rank() == 0 {
					if err := c.SendpType(b, 1, ty, 1, tag); err != nil {
						return err
					}
				} else if _, err := c.RecvType(b, 1, ty, 0, tag); err != nil {
					return err
				}
			}
			c.Barrier()
			if c.Rank() == 0 {
				secs = (c.Wtime() - t0) / float64(cfg.Reps)
				plan = datatype.PlanStatsSnapshot().Sub(before)
			}
			return nil
		})
		return secs, plan, err
	}
	normT, normPlan, err := run(true)
	if err != nil {
		return Result{}, fmt.Errorf("normalized send: %w", err)
	}
	rawT, _, err := run(false)
	if err != nil {
		return Result{}, fmt.Errorf("raw send: %w", err)
	}
	return Result{
		Cell:    Cell{Rule: NormalizedVsRaw, Bytes: rows * rowBytes, Ranks: 2},
		LhsName: "SendpType(normalized)", RhsName: "SendpType(raw)",
		Lhs:     normT, Rhs: rawT, Plan: normPlan,
	}, nil
}

// collMeasurement is one timed collective strategy: setup builds
// per-rank state outside the timed window and returns the operation.
type collMeasurement struct {
	prof  *perfmodel.Profile
	ranks int
	reps  int
}

// run times the operation over a bracketed world: barrier, timed loop,
// barrier; seconds per op and the window's PlanStats delta are read on
// rank 0.
func (cm collMeasurement) run(setup func(c *mpi.Comm) (func() error, error)) (float64, datatype.PlanStats, error) {
	var secs float64
	var plan datatype.PlanStats
	err := mpi.Run(cm.ranks, mpi.Options{Profile: cm.prof, WallLimit: 2 * time.Minute}, func(c *mpi.Comm) error {
		op, err := setup(c)
		if err != nil {
			return err
		}
		c.Barrier()
		before := datatype.PlanStatsSnapshot()
		t0 := c.Wtime()
		for rep := 0; rep < cm.reps; rep++ {
			if err := op(); err != nil {
				return err
			}
		}
		c.Barrier()
		if c.Rank() == 0 {
			secs = (c.Wtime() - t0) / float64(cm.reps)
			plan = datatype.PlanStatsSnapshot().Sub(before)
		}
		return nil
	})
	return secs, plan, err
}

// measureCollectives executes the three collective rules for one
// workload: each typed collective against its decomposition, every
// strategy moving identical bytes through identical layouts.
func measureCollectives(p *perfmodel.Profile, w core.Workload, cfg Config) ([]Result, error) {
	ranks := cfg.Ranks
	cm := collMeasurement{prof: p, ranks: ranks, reps: cfg.Reps}
	const tag = 3

	// Typed broadcast vs the linear fan of typed sends.
	bcastTyped, bcastPlan, err := cm.run(func(c *mpi.Comm) (func() error, error) {
		ty, err := w.VectorType()
		if err != nil {
			return nil, err
		}
		b := buf.Alloc(int(ty.Extent()))
		if c.Rank() == 0 {
			b.FillPattern(1)
		}
		return func() error { return c.BcastType(b, 1, ty, 0) }, nil
	})
	if err != nil {
		return nil, fmt.Errorf("bcast typed: %w", err)
	}
	bcastFan, _, err := cm.run(func(c *mpi.Comm) (func() error, error) {
		ty, err := w.VectorType()
		if err != nil {
			return nil, err
		}
		b := buf.Alloc(int(ty.Extent()))
		if c.Rank() == 0 {
			b.FillPattern(1)
		}
		return func() error {
			if c.Rank() == 0 {
				for r := 1; r < c.Size(); r++ {
					if err := c.SendType(b, 1, ty, r, tag); err != nil {
						return err
					}
				}
				return nil
			}
			_, err := c.RecvType(b, 1, ty, 0, tag)
			return err
		}, nil
	})
	if err != nil {
		return nil, fmt.Errorf("bcast fan: %w", err)
	}

	// Typed gather vs its explicit pack/send/unpack decomposition.
	gatherSetup := func(c *mpi.Comm) (*datatype.Type, buf.Block, buf.Block, error) {
		ty, err := w.VectorType()
		if err != nil {
			return nil, buf.Block{}, buf.Block{}, err
		}
		ext := int(ty.Extent())
		send := buf.Alloc(ext)
		send.FillPattern(byte(c.Rank()))
		recv := buf.Alloc(ext * c.Size())
		return ty, send, recv, nil
	}
	gatherTyped, gatherPlan, err := cm.run(func(c *mpi.Comm) (func() error, error) {
		ty, send, recv, err := gatherSetup(c)
		if err != nil {
			return nil, err
		}
		return func() error { return c.GatherType(send, 1, ty, recv, 1, ty, 0) }, nil
	})
	if err != nil {
		return nil, fmt.Errorf("gather typed: %w", err)
	}
	gatherP2P, _, err := cm.run(func(c *mpi.Comm) (func() error, error) {
		ty, send, recv, err := gatherSetup(c)
		if err != nil {
			return nil, err
		}
		ext := int(ty.Extent())
		pk := buf.Alloc(int(ty.PackSize(1)))
		return func() error {
			if c.Rank() != 0 {
				var pos int64
				if err := c.Pack(send, 1, ty, pk, &pos); err != nil {
					return err
				}
				return c.SendPacked(pk, 0, tag)
			}
			for r := 0; r < c.Size(); r++ {
				slot := recv.Slice(r*ext, ext)
				var pos int64
				if r == 0 {
					if err := c.Pack(send, 1, ty, pk, &pos); err != nil {
						return err
					}
				} else if _, err := c.Recv(pk, r, tag); err != nil {
					return err
				}
				pos = 0
				if err := c.Unpack(pk, &pos, slot, 1, ty); err != nil {
					return err
				}
			}
			return nil
		}, nil
	})
	if err != nil {
		return nil, fmt.Errorf("gather p2p: %w", err)
	}

	// Typed allgather vs gather + contiguous broadcast of the slab.
	allgatherTyped, allgatherPlan, err := cm.run(func(c *mpi.Comm) (func() error, error) {
		ty, send, recv, err := gatherSetup(c)
		if err != nil {
			return nil, err
		}
		return func() error { return c.AllgatherType(send, 1, ty, recv, 1, ty) }, nil
	})
	if err != nil {
		return nil, fmt.Errorf("allgather typed: %w", err)
	}
	allgatherStaged, _, err := cm.run(func(c *mpi.Comm) (func() error, error) {
		ty, send, recv, err := gatherSetup(c)
		if err != nil {
			return nil, err
		}
		return func() error {
			if err := c.GatherType(send, 1, ty, recv, 1, ty, 0); err != nil {
				return err
			}
			return c.Bcast(recv, 0)
		}, nil
	})
	if err != nil {
		return nil, fmt.Errorf("allgather staged: %w", err)
	}

	cell := func(rule Rule) Cell {
		return Cell{Rule: rule, Bytes: w.Bytes(), Ranks: ranks}
	}
	return []Result{
		{
			Cell:    cell(BcastVsLinearFan),
			LhsName: "BcastType", RhsName: "linear-fan",
			Lhs: bcastTyped, Rhs: bcastFan, Plan: bcastPlan,
		},
		{
			Cell:    cell(CollectiveVsP2P),
			LhsName: "GatherType", RhsName: "pack+send+unpack",
			Lhs: gatherTyped, Rhs: gatherP2P, Plan: gatherPlan,
		},
		{
			Cell:    cell(AllgatherVsGatherBcast),
			LhsName: "AllgatherType", RhsName: "gather+bcast",
			Lhs: allgatherTyped, Rhs: allgatherStaged, Plan: allgatherPlan,
		},
	}, nil
}
