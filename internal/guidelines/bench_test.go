package guidelines

import "testing"

// BenchmarkGuidelinesSweep is the CI smoke for the verifier itself: a
// minimal one-cell sweep, allocation-reported so a regression that
// starts churning per-measurement garbage (the sweep brackets
// PlanStats reads, not allocations) shows up in -benchmem. The bench
// fails internally on a sweep error or a fresh gate violation, so the
// `-benchtime=1x` CI invocation doubles as a cheap gate run.
func BenchmarkGuidelinesSweep(b *testing.B) {
	cfg := Config{
		Profiles: []string{"skx-impi"},
		Layouts:  []LayoutSpec{{Name: "alt", BlockLen: 1, Stride: 2}},
		Sizes:    []int64{8 << 10},
		Ranks:    2,
		Reps:     1,
	}
	base := LoadBaseline()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rp, err := Sweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if fresh := base.Gate(rp); len(fresh) != 0 {
			b.Fatalf("fresh violations in smoke sweep: %v", fresh)
		}
	}
}
