// Package memsim models the memory side of the simulated machines: a
// cache hierarchy with warmth tracking, and cost functions for the
// gather/scatter/stream loops that dominate non-contiguous sends.
//
// The model follows the paper's own first-order analysis (§2) and its
// empirical refinements:
//
//   - A gather loop's cost is read-traffic bound: destination writes
//     interleave with source loads and are not charged (§2.2).
//   - Read traffic counts whole cache lines, so a strided layout with
//     density d moves Size/d bytes, not Size bytes. For the paper's
//     canonical every-other-element layout d = 1/2, which together with
//     the post-gather send reproduces the observed ≈3× slowdown.
//   - Hardware prefetch hides memory latency for regular access
//     patterns; irregular gaps (layout.Stats.GapJitter) degrade it
//     (§4.7, "types with less regular spacing may give worse
//     performance due to decreased use of prefetch streams").
//   - Small blocks under-use cache lines; larger block sizes perform
//     better (§4.7).
//   - Data resident in cache is read at cache bandwidth, which is why
//     not flushing between ping-pongs helps intermediate sizes (§4.6).
package memsim

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/buf"
	"repro/internal/layout"
)

// Hierarchy describes one machine's memory system. Bandwidths are in
// bytes/second as sustained by a single core's copy loop, which is the
// agent that builds send buffers in the paper's benchmark.
type Hierarchy struct {
	LineSize int64 // cache line, 64 on all machines in the study

	// Capacities in bytes. The model folds L1 and L2 into the warm
	// path and uses LLC as the capacity that decides residency; this
	// matches the granularity of the paper's flush experiment.
	L1, L2, LLC int64

	// CopyBW is the single-core bandwidth of a user-space copy/gather
	// loop reading from DRAM. StreamBW is the bandwidth available to
	// streaming engines (NIC injection, MPI-internal block memcpy),
	// usually a little higher than a scalar loop. CacheBW is the rate
	// for data resident in LLC.
	CopyBW   float64
	StreamBW float64
	CacheBW  float64

	// MissLatency is the exposed per-cache-miss latency when prefetch
	// fails entirely. PrefetchMinBlock is the smallest contiguous run
	// that engages a prefetch stream; PrefetchStreams is how many
	// independent streams the core sustains.
	MissLatency      float64
	PrefetchMinBlock int64
	PrefetchStreams  int

	// SegmentOverhead is the fixed loop/bookkeeping cost per
	// contiguous segment of a gather (loop control, address
	// computation). It dominates for layouts with many tiny segments.
	SegmentOverhead float64

	// ParallelBWScale caps the bandwidth gain of goroutine-parallel
	// packing on this memory system: one core's gather loop runs at
	// CopyBW, and additional workers scale the read rate only until
	// the socket's memory system saturates. The ratio is a property of
	// the socket (aggregate DRAM bandwidth over one core's copy rate),
	// so each profile calibrates it: a Skylake core nearly saturates
	// its socket alone, a KNL core is far from MCDRAM's aggregate
	// rate. Zero means DefaultParallelBWScale.
	ParallelBWScale float64

	// InternalChunk is the size of the runtime's internal pack-buffer
	// chunks: a chunked derived-type transfer packs and transmits the
	// payload through pieces of this size. It is a property of how the
	// installation's MPI stages messages through its buffer pool, so
	// each profile calibrates it (it was previously a perfmodel.Profile
	// field; the promotion mirrors ParallelBWScale's). Zero means
	// DefaultInternalChunk.
	InternalChunk int64

	// PipelineDepth is the slot-ring depth of the software-pipelined
	// chunk engine on this memory system: how many internal chunks the
	// pack worker may run ahead of injection. Depth 1 is plain double
	// buffering of the two stages; deeper rings absorb chunk-to-chunk
	// jitter (which the deterministic cost model does not price, but
	// the real executor exhibits), at the cost of depth×InternalChunk
	// of pooled staging per transfer. Zero means DefaultPipelineDepth.
	PipelineDepth int

	// NodeSize is the node boundary of the simulated machine: blocks
	// of NodeSize consecutive world ranks share one node (ranks a and
	// b are node-local iff a/NodeSize == b/NodeSize). 0 or 1 means a
	// flat machine — every pair of ranks is internode. The mpi layer
	// keys its two-level (leader tree / leader ring) collective
	// topologies and the intra-node latency discount off this field.
	NodeSize int
}

// DefaultInternalChunk is the internal pack-buffer chunk size used
// when a Hierarchy does not calibrate its own: the 512 KiB staging
// granularity of the paper-era Intel MPI installations.
const DefaultInternalChunk = 512 << 10

// DefaultPipelineDepth is the slot-ring depth used when a Hierarchy
// does not calibrate its own: double buffering, the minimum that
// overlaps the pack of chunk k+1 with the injection of chunk k.
const DefaultPipelineDepth = 2

// InternalChunkSize returns the hierarchy's internal chunk size,
// defaulted.
func (h *Hierarchy) InternalChunkSize() int64 {
	if h.InternalChunk > 0 {
		return h.InternalChunk
	}
	return DefaultInternalChunk
}

// ChunkPipelineDepth returns the hierarchy's pipeline slot-ring depth,
// defaulted.
func (h *Hierarchy) ChunkPipelineDepth() int {
	if h.PipelineDepth > 0 {
		return h.PipelineDepth
	}
	return DefaultPipelineDepth
}

// Validate checks the profile for usable values.
func (h *Hierarchy) Validate() error {
	switch {
	case h.LineSize <= 0:
		return fmt.Errorf("memsim: LineSize %d", h.LineSize)
	case h.CopyBW <= 0 || h.StreamBW <= 0 || h.CacheBW <= 0:
		return fmt.Errorf("memsim: non-positive bandwidth (copy %g stream %g cache %g)", h.CopyBW, h.StreamBW, h.CacheBW)
	case h.LLC <= 0:
		return fmt.Errorf("memsim: LLC %d", h.LLC)
	case h.InternalChunk < 0:
		return fmt.Errorf("memsim: InternalChunk %d", h.InternalChunk)
	case h.PipelineDepth < 0:
		return fmt.Errorf("memsim: PipelineDepth %d", h.PipelineDepth)
	case h.ParallelBWScale < 0:
		return fmt.Errorf("memsim: ParallelBWScale %g", h.ParallelBWScale)
	case h.NodeSize < 0:
		return fmt.Errorf("memsim: NodeSize %d", h.NodeSize)
	}
	return nil
}

// State tracks cache warmth per buffer region with an LRU over
// regions. It belongs to one rank but may be shared with that rank's
// in-flight non-blocking operations, so it is internally locked.
type State struct {
	mu       sync.Mutex
	h        *Hierarchy
	resident map[buf.Region]int64 // bytes of each region held in LLC
	order    []buf.Region         // LRU order, oldest first
	used     int64
	disabled bool // when true, Touch/Flush are no-ops and reads are DRAM-priced
}

// NewState creates cache state for hierarchy h.
func NewState(h *Hierarchy) *State {
	return &State{h: h, resident: make(map[buf.Region]int64)}
}

// Hierarchy returns the hierarchy the state models.
func (s *State) Hierarchy() *Hierarchy { return s.h }

// SetDisabled turns warmth tracking off; every read is priced at DRAM
// bandwidth. The harness uses this for the always-cold baseline.
func (s *State) SetDisabled(d bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.disabled = d
}

// Touch records that n bytes of region r were brought into cache,
// evicting least-recently-used regions beyond LLC capacity.
func (s *State) Touch(r buf.Region, n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touch(r, n)
}

func (s *State) touch(r buf.Region, n int64) {
	if s.disabled || n <= 0 {
		return
	}
	if n > s.h.LLC {
		n = s.h.LLC
	}
	if old, ok := s.resident[r]; ok {
		s.used -= old
		s.removeFromOrder(r)
	}
	s.resident[r] = n
	s.order = append(s.order, r)
	s.used += n
	for s.used > s.h.LLC && len(s.order) > 1 {
		oldest := s.order[0]
		if oldest == r {
			// Never evict what we just touched below its share.
			break
		}
		s.order = s.order[1:]
		s.used -= s.resident[oldest]
		delete(s.resident, oldest)
	}
	if s.used > s.h.LLC {
		// The touched region alone exceeds capacity; clamp it.
		over := s.used - s.h.LLC
		s.resident[r] -= over
		s.used = s.h.LLC
		_ = over
	}
}

func (s *State) removeFromOrder(r buf.Region) {
	for i, x := range s.order {
		if x == r {
			s.order = append(s.order[:i], s.order[i+1:]...)
			return
		}
	}
}

// Residency returns the fraction of an n-byte working set of region r
// currently cache-resident, in [0, 1].
func (s *State) Residency(r buf.Region, n int64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.residency(r, n)
}

func (s *State) residency(r buf.Region, n int64) float64 {
	if s.disabled || n <= 0 {
		return 0
	}
	res := s.resident[r]
	if res >= n {
		return 1
	}
	return float64(res) / float64(n)
}

// Flush empties the cache, modelling the paper's 50 M-element array
// rewrite between ping-pongs (§3.2).
func (s *State) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.disabled {
		return
	}
	s.resident = make(map[buf.Region]int64)
	s.order = s.order[:0]
	s.used = 0
}

// FlushCost returns the virtual cost of the flush itself: rewriting a
// 50 M-element (400 MB) array at streaming bandwidth. The harness
// spends this time outside the timed window, exactly like the paper.
func (s *State) FlushCost() float64 {
	const flushBytes = 50e6 * 8
	return flushBytes / s.h.StreamBW
}

// readBandwidth blends cache and DRAM bandwidth by residency and
// applies the prefetch model for the given layout statistics.
func (s *State) readBandwidth(base float64, residency float64, st layout.Stats) float64 {
	bw := base*(1-residency) + s.h.CacheBW*residency
	// Prefetch efficiency: contiguous or large-block layouts stream at
	// full bandwidth; small-block regular strides engage the stride
	// prefetcher with a modest penalty; irregular gaps defeat it in
	// proportion to the jitter.
	eff := 1.0
	if st.Segments > 1 && st.AvgBlock < float64(s.h.PrefetchMinBlock) {
		const regular = 0.97 // stride prefetcher handles small regular blocks almost perfectly
		jitterPenalty := st.GapJitter
		if jitterPenalty > 1 {
			jitterPenalty = 1
		}
		eff = regular * (1 - 0.6*jitterPenalty)
		if eff < 0.25 {
			eff = 0.25
		}
	}
	return bw * eff
}

// Traffic returns the bytes the memory system actually moves to read a
// layout once: whole cache lines, so low-density layouts are
// amplified. Gaps larger than a line skip lines; gaps within a line do
// not.
func (h *Hierarchy) Traffic(st layout.Stats) int64 {
	if st.Segments == 0 || st.Bytes == 0 {
		return 0
	}
	if st.Segments == 1 {
		return roundUp(st.Bytes, h.LineSize)
	}
	if st.AvgGap < float64(h.LineSize) {
		// Blocks and gaps interleave within lines: every line of the
		// extent is touched.
		return roundUp(st.Extent, h.LineSize)
	}
	// Distinct lines per segment; average one extra line for
	// misalignment when blocks are not line-multiples.
	perSeg := roundUp(int64(st.AvgBlock), h.LineSize)
	if int64(st.AvgBlock)%h.LineSize != 0 {
		perSeg += h.LineSize / 2
	}
	return int64(st.Segments) * perSeg
}

func roundUp(n, q int64) int64 {
	if q <= 0 {
		return n
	}
	return (n + q - 1) / q * q
}

// GatherCost prices a user-space gather loop: read src through the
// layout, write st.Bytes contiguously. Destination writes interleave
// with reads and are not charged (paper §2.2); the cost is read
// traffic at the blended bandwidth plus per-segment overhead.
// The call updates warmth: the source lines and the destination become
// resident.
func (s *State) GatherCost(src buf.Region, dst buf.Region, st layout.Stats) float64 {
	return s.gatherCost(src, dst, st, s.h.SegmentOverhead, 1)
}

// CompiledUnrollFactor is how far a compiled pack plan amortises the
// per-segment loop bookkeeping relative to a generic interpreting
// gather loop: the plan's kernels unroll fixed-stride runs and walk a
// precomputed segment table, so address generation and loop control
// overlap the copies instead of serialising with them.
const CompiledUnrollFactor = 8

// CompiledGatherCost prices the gather when a compiled pack plan runs
// it (see internal/datatype/plan.go): the memory traffic is identical
// — lines are lines — but the per-segment bookkeeping is amortised by
// CompiledUnrollFactor. This is the model behind the "packing(c)"
// scheme column: compiled packing approaches the traffic bound that
// generic interpretation cannot reach on small-block layouts.
func (s *State) CompiledGatherCost(src buf.Region, dst buf.Region, st layout.Stats) float64 {
	return s.gatherCost(src, dst, st, s.h.SegmentOverhead/CompiledUnrollFactor, 1)
}

// CompiledScatterCost is the scatter-side mirror of
// CompiledGatherCost.
func (s *State) CompiledScatterCost(src buf.Region, dst buf.Region, st layout.Stats) float64 {
	return s.scatterCost(src, dst, st, s.h.SegmentOverhead/CompiledUnrollFactor, 1)
}

// NormalizedUnrollFactor is the additional per-segment amortisation of
// a canonicalised block program over a generic compiled gather: the
// Commit-time normalizer collapses the segment table into a closed-form
// strided-block descriptor, so the kernel enumerates whole rows through
// an unrolled tile with no table walk, no binary-search entry and no
// per-segment length fetch. It composes with CompiledUnrollFactor.
const NormalizedUnrollFactor = 2

// NormalizedGatherCost prices the gather when the plan's program was
// canonicalised into a strided-block form (datatype.KernelBlock): the
// traffic term is unchanged — lines are lines — but the per-segment
// bookkeeping amortises a further NormalizedUnrollFactor beyond the
// generic compiled kernel. This is the cost term behind the
// "normalized<=raw" guideline and the E19 model panel.
func (s *State) NormalizedGatherCost(src buf.Region, dst buf.Region, st layout.Stats) float64 {
	return s.gatherCost(src, dst, st, s.h.SegmentOverhead/(CompiledUnrollFactor*NormalizedUnrollFactor), 1)
}

// NormalizedScatterCost is the scatter-side mirror of
// NormalizedGatherCost.
func (s *State) NormalizedScatterCost(src buf.Region, dst buf.Region, st layout.Stats) float64 {
	return s.scatterCost(src, dst, st, s.h.SegmentOverhead/(CompiledUnrollFactor*NormalizedUnrollFactor), 1)
}

// ParallelNormalizedGatherCost prices the canonicalised gather when the
// plan engine splits the packed range across workers goroutines.
func (s *State) ParallelNormalizedGatherCost(src buf.Region, dst buf.Region, st layout.Stats, workers int) float64 {
	return s.gatherCost(src, dst, st,
		s.h.SegmentOverhead/(CompiledUnrollFactor*NormalizedUnrollFactor)/float64(maxInt(workers, 1)),
		s.h.parallelSpeedup(workers))
}

// ParallelNormalizedScatterCost is the scatter-side mirror of
// ParallelNormalizedGatherCost.
func (s *State) ParallelNormalizedScatterCost(src buf.Region, dst buf.Region, st layout.Stats, workers int) float64 {
	return s.scatterCost(src, dst, st,
		s.h.SegmentOverhead/(CompiledUnrollFactor*NormalizedUnrollFactor)/float64(maxInt(workers, 1)),
		s.h.parallelSpeedup(workers))
}

// DefaultParallelBWScale is the saturation cap used when a Hierarchy
// does not calibrate its own ParallelBWScale: the paper-era socket
// shape, where roughly 3–4 cores' worth of copy bandwidth saturates a
// socket. (This was previously the package-wide constant
// ParallelBWScale; it is now a per-profile Hierarchy field.)
const DefaultParallelBWScale = 3.5

// parallelScale returns the hierarchy's saturation cap, defaulted.
func (h *Hierarchy) parallelScale() float64 {
	if h.ParallelBWScale > 0 {
		return h.ParallelBWScale
	}
	return DefaultParallelBWScale
}

// parallelSpeedup returns the effective bandwidth multiplier of a
// w-worker parallel pack on this memory system.
func (h *Hierarchy) parallelSpeedup(w int) float64 {
	if w <= 1 {
		return 1
	}
	sp := float64(w)
	if cap := h.parallelScale(); sp > cap {
		sp = cap
	}
	return sp
}

// ParallelCompiledGatherCost prices the compiled gather when the plan
// engine splits the packed range across workers goroutines (messages
// over datatype.SetParallelPackThreshold): the traffic term scales by
// the saturating parallel speedup, and the per-segment bookkeeping —
// embarrassingly parallel — divides across the workers. This is the
// parallel-pack term that lets the recommendation engine price
// packing(c) against datatype sends at large sizes.
func (s *State) ParallelCompiledGatherCost(src buf.Region, dst buf.Region, st layout.Stats, workers int) float64 {
	return s.gatherCost(src, dst, st, s.h.SegmentOverhead/CompiledUnrollFactor/float64(maxInt(workers, 1)), s.h.parallelSpeedup(workers))
}

// ParallelCompiledScatterCost is the scatter-side mirror of
// ParallelCompiledGatherCost.
func (s *State) ParallelCompiledScatterCost(src buf.Region, dst buf.Region, st layout.Stats, workers int) float64 {
	return s.scatterCost(src, dst, st, s.h.SegmentOverhead/CompiledUnrollFactor/float64(maxInt(workers, 1)), s.h.parallelSpeedup(workers))
}

// FusedCopyCost prices the one-pass fused scatter/gather of a
// plan-driven transfer (datatype.FusedCopy behind the sendv
// rendezvous): read the source through its layout and write the
// destination through its layout in a single pass. Compared with the
// staged pipeline it replaces — a gather into a staging buffer plus a
// scatter out of it — the payload crosses the memory system once, the
// staging buffer's own traffic disappears entirely, and the two
// layers' segment walks collapse into one fused schedule whose
// bookkeeping is the larger of the two segment counts at the
// compiled engines' amortised per-segment cost.
func (s *State) FusedCopyCost(src buf.Region, dst buf.Region, srcSt, dstSt layout.Stats) float64 {
	return s.fusedCopyCost(src, dst, srcSt, dstSt, 1)
}

// ParallelFusedCopyCost prices the fused one-pass transfer when the
// pair schedule splits across workers goroutines (messages of at least
// datatype.SetParallelPackThreshold bytes): the single pass's traffic
// scales by the saturating parallel speedup (ParallelBWScale, the same
// cap as parallel compiled packing) and the fused segment bookkeeping
// divides across the workers.
func (s *State) ParallelFusedCopyCost(src buf.Region, dst buf.Region, srcSt, dstSt layout.Stats, workers int) float64 {
	return s.fusedCopyCost(src, dst, srcSt, dstSt, workers)
}

// fusedCopyCost is the shared body of the fused pricers.
func (s *State) fusedCopyCost(src buf.Region, dst buf.Region, srcSt, dstSt layout.Stats, workers int) float64 {
	traffic := s.h.Traffic(srcSt)
	if traffic == 0 {
		return 0
	}
	speedup := s.h.parallelSpeedup(workers)
	s.mu.Lock()
	defer s.mu.Unlock()
	res := s.residency(src, traffic)
	bw := s.readBandwidth(s.h.CopyBW, res, srcSt) * speedup
	cost := float64(traffic) / bw
	// Write-allocate fills for the partial destination lines beyond
	// the payload itself (same charge as the scatter side of the
	// staged pipeline; dense destinations add nothing).
	if extra := s.h.Traffic(dstSt) - roundUp(dstSt.Bytes, s.h.LineSize); extra > 0 {
		cost += float64(extra) / (s.h.CopyBW * speedup)
	}
	segs := srcSt.Segments
	if dstSt.Segments > segs {
		segs = dstSt.Segments
	}
	cost += float64(segs) * s.h.SegmentOverhead / CompiledUnrollFactor / float64(maxInt(workers, 1))
	s.touch(src, traffic)
	s.touch(dst, s.h.Traffic(dstSt))
	return cost
}

// PipelinedChunkCost composes the two stages of a chunked transfer
// under the software-pipelined chunk engine: the pack pass (total
// seconds, per-chunk bookkeeping included) and the consume pass (wire
// injection, or the unpack of a staged scatter), overlapped chunk by
// chunk through a slot ring. The classic two-stage pipeline bound
// applies: fill with the first chunk's pack, steady state at the
// slower stage, drain with the last chunk's consume —
//
//	T = pack/C + (C-1)·max(pack/C, consume/C) + consume/C
//
// for C chunks. Depth 1 (double buffering) already attains this bound
// in the deterministic model — the pack worker only ever needs one
// chunk of lookahead when both stages are jitter-free — so the ring
// depth does not appear in the formula; a depth below 1 (pipelining
// disabled) degenerates to the serial sum, exactly what the measured
// installations do (§2.3: "in practice we don't see this
// performance").
func PipelinedChunkCost(pack, consume float64, chunks int64, depth int) float64 {
	if chunks <= 1 || depth < 1 {
		return pack + consume
	}
	c := float64(chunks)
	return pack/c + (c-1)*math.Max(pack/c, consume/c) + consume/c
}

// Collective cost terms. A fan collective (gather/scatter shape) is a
// set of per-leg layout transfers serialised at the root; the two
// terms below price one leg under each engine, and the fan composers
// fold legs across the communicator. core.PriceCollective composes
// them into the packed-then-collective vs typed-collective comparison.

// FusedCollectiveLegCost prices one leg of a typed collective riding
// the fused engine: the payload crosses the memory system once,
// straight between the two rank layouts (the root's self-leg, or a
// fused sendv remote leg), parallel-pack aware.
func (s *State) FusedCollectiveLegCost(src buf.Region, dst buf.Region, srcSt, dstSt layout.Stats, workers int) float64 {
	return s.fusedCopyCost(src, dst, srcSt, dstSt, workers)
}

// StagedCollectiveLegCost prices one leg of the packed-then-collective
// pipeline: a compiled pack of the layout into a contiguous slot plus
// the matching compiled unpack on the far side — two memory passes per
// leg, the cost the typed collective removes.
func (s *State) StagedCollectiveLegCost(src buf.Region, dst buf.Region, srcSt, dstSt layout.Stats) float64 {
	return s.CompiledGatherCost(src, dst, srcSt) + s.CompiledScatterCost(src, dst, dstSt)
}

// LinearFanCost composes a per-leg cost across a p-rank linear
// (rank-sequential) fan: the root performs its own self leg once, then
// serialises p-1 remote legs, each occupying the larger of its memory
// pass and its wire time plus the fixed per-leg overhead.
func LinearFanCost(p int, selfLeg, remoteLeg, wire, perLegOverhead float64) float64 {
	if p <= 1 {
		return selfLeg
	}
	return selfLeg + float64(p-1)*(perLegOverhead+math.Max(remoteLeg, wire))
}

// TreeFanCost is the binomial-tree counterpart: ⌈log₂ p⌉ rounds, each
// paying a full leg (forwarding ranks re-run the memory pass, so leg
// and wire serialise) plus the per-leg overhead.
func TreeFanCost(p int, selfLeg, remoteLeg, wire, perLegOverhead float64) float64 {
	if p <= 1 {
		return selfLeg
	}
	rounds := math.Ceil(math.Log2(float64(p)))
	return selfLeg + rounds*(perLegOverhead+remoteLeg+wire)
}

// gatherCost is the shared body of the gather pricers; the engines
// differ in their per-segment bookkeeping cost and, for the parallel
// executor, the bandwidth speedup.
func (s *State) gatherCost(src buf.Region, dst buf.Region, st layout.Stats, segOverhead, speedup float64) float64 {
	traffic := s.h.Traffic(st)
	if traffic == 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	res := s.residency(src, traffic)
	bw := s.readBandwidth(s.h.CopyBW, res, st) * speedup
	cost := float64(traffic)/bw + float64(st.Segments)*segOverhead
	s.touch(src, traffic)
	s.touch(dst, st.Bytes)
	return cost
}

// scatterCost is the shared body of the scatter pricers.
func (s *State) scatterCost(src buf.Region, dst buf.Region, st layout.Stats, segOverhead, speedup float64) float64 {
	if st.Bytes == 0 {
		return 0
	}
	traffic := roundUp(st.Bytes, s.h.LineSize)
	s.mu.Lock()
	defer s.mu.Unlock()
	res := s.residency(src, traffic)
	bw := s.readBandwidth(s.h.CopyBW, res, layout.Stats{Segments: 1, Bytes: st.Bytes, Extent: st.Bytes}) * speedup
	cost := float64(traffic) / bw
	// Write-allocate fills for the partial destination lines.
	extra := s.h.Traffic(st) - roundUp(st.Bytes, s.h.LineSize)
	if extra > 0 {
		cost += float64(extra) / (s.h.CopyBW * speedup)
	}
	cost += float64(st.Segments) * segOverhead
	s.touch(src, traffic)
	s.touch(dst, s.h.Traffic(st))
	return cost
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ScatterCost prices the inverse loop: read a contiguous source of
// st.Bytes and write it out through the layout. Reads are contiguous,
// but scattered writes still allocate the destination lines, so the
// charged traffic is the contiguous read plus the destination line
// fills beyond the payload itself.
func (s *State) ScatterCost(src buf.Region, dst buf.Region, st layout.Stats) float64 {
	return s.scatterCost(src, dst, st, s.h.SegmentOverhead, 1)
}

// StreamCost prices a streaming contiguous read of n bytes of region r
// (NIC injection, internal block memcpy) at StreamBW blended with
// cache residency.
func (s *State) StreamCost(r buf.Region, n int64) float64 {
	if n <= 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	res := s.residency(r, n)
	// Cache residency can only help a streaming engine: on machines
	// whose single-core cache read rate sits below the streaming rate
	// (KNL), warm data still streams at full StreamBW.
	cacheBW := s.h.CacheBW
	if cacheBW < s.h.StreamBW {
		cacheBW = s.h.StreamBW
	}
	bw := s.h.StreamBW*(1-res) + cacheBW*res
	s.touch(r, n)
	return float64(n) / bw
}

// CopyCost prices a plain contiguous copy of n bytes from region src
// to region dst by the core.
func (s *State) CopyCost(src, dst buf.Region, n int64) float64 {
	if n <= 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	res := s.residency(src, n)
	bw := s.h.CopyBW*(1-res) + s.h.CacheBW*res
	s.touch(src, n)
	s.touch(dst, n)
	return float64(n) / bw
}
