package memsim

import (
	"testing"

	"repro/internal/buf"
	"repro/internal/layout"
)

func testHierarchy() *Hierarchy {
	return &Hierarchy{
		LineSize:         64,
		L1:               32 << 10,
		L2:               1 << 20,
		LLC:              32 << 20,
		CopyBW:           10e9,
		StreamBW:         12e9,
		CacheBW:          40e9,
		MissLatency:      90e-9,
		PrefetchMinBlock: 256,
		PrefetchStreams:  16,
		SegmentOverhead:  2e-9,
	}
}

func TestValidate(t *testing.T) {
	h := testHierarchy()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *h
	bad.CopyBW = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero bandwidth validated")
	}
}

func TestTrafficContig(t *testing.T) {
	h := testHierarchy()
	st := layout.Describe(layout.Contig{N: 1000})
	if got := h.Traffic(st); got != 1024 {
		t.Fatalf("traffic = %d, want 1024 (line-rounded)", got)
	}
}

func TestTrafficStrideWithinLine(t *testing.T) {
	h := testHierarchy()
	// Every other float64: gaps of 8 bytes, well under a line, so the
	// whole extent is touched — the 2× amplification behind the
	// paper's factor-3 slowdown.
	st := layout.Describe(layout.Strided{Count: 1000, BlockLen: 8, Stride: 16})
	want := roundUp(st.Extent, 64)
	if got := h.Traffic(st); got != want {
		t.Fatalf("traffic = %d, want %d", got, want)
	}
	if got := h.Traffic(st); got < 2*st.Bytes-128 {
		t.Fatalf("stride-2 traffic %d should be ≈2× payload %d", got, st.Bytes)
	}
}

func TestTrafficLargeGapsSkipLines(t *testing.T) {
	h := testHierarchy()
	// 64-byte blocks separated by 4 KB: only the blocks' lines move.
	st := layout.Describe(layout.Strided{Count: 100, BlockLen: 64, Stride: 4096})
	if got := h.Traffic(st); got != 100*64 {
		t.Fatalf("traffic = %d, want %d", got, 100*64)
	}
}

func TestGatherCostColdVsWarm(t *testing.T) {
	h := testHierarchy()
	s := NewState(h)
	src := buf.Alloc(1 << 20)
	dst := buf.Alloc(1 << 19)
	st := layout.Describe(layout.Strided{Count: 1 << 16, BlockLen: 8, Stride: 16})
	cold := s.GatherCost(src.Region(), dst.Region(), st)
	warm := s.GatherCost(src.Region(), dst.Region(), st)
	if warm >= cold {
		t.Fatalf("warm gather (%g) not faster than cold (%g)", warm, cold)
	}
}

func TestFlushResetsWarmth(t *testing.T) {
	h := testHierarchy()
	s := NewState(h)
	src := buf.Alloc(1 << 20)
	dst := buf.Alloc(1 << 19)
	st := layout.Describe(layout.Strided{Count: 1 << 16, BlockLen: 8, Stride: 16})
	cold := s.GatherCost(src.Region(), dst.Region(), st)
	s.Flush()
	again := s.GatherCost(src.Region(), dst.Region(), st)
	if again != cold {
		t.Fatalf("post-flush cost %g differs from cold cost %g", again, cold)
	}
}

func TestResidencyEvictsLRU(t *testing.T) {
	h := testHierarchy()
	h.LLC = 1 << 20 // 1 MB cache
	s := NewState(h)
	a, b, c := buf.Alloc(1), buf.Alloc(1), buf.Alloc(1)
	s.Touch(a.Region(), 512<<10)
	s.Touch(b.Region(), 512<<10)
	if r := s.Residency(a.Region(), 512<<10); r != 1 {
		t.Fatalf("a residency = %v", r)
	}
	s.Touch(c.Region(), 512<<10) // evicts a (oldest)
	if r := s.Residency(a.Region(), 512<<10); r != 0 {
		t.Fatalf("a not evicted: %v", r)
	}
	if r := s.Residency(c.Region(), 512<<10); r != 1 {
		t.Fatalf("c residency = %v", r)
	}
}

func TestDisabledStateAlwaysCold(t *testing.T) {
	s := NewState(testHierarchy())
	s.SetDisabled(true)
	r := buf.Alloc(1)
	s.Touch(r.Region(), 1<<20)
	if got := s.Residency(r.Region(), 1<<20); got != 0 {
		t.Fatalf("disabled state has residency %v", got)
	}
}

func TestIrregularGatherCostsMore(t *testing.T) {
	h := testHierarchy()
	s := NewState(h)
	s.SetDisabled(true) // isolate the prefetch effect from warmth
	src, dst := buf.Alloc(1), buf.Alloc(1)
	regular := layout.Describe(layout.Jittered(10000, 8, 64, 0))
	jittered := layout.Describe(layout.Jittered(10000, 8, 64, 0.9))
	cr := s.GatherCost(src.Region(), dst.Region(), regular)
	cj := s.GatherCost(src.Region(), dst.Region(), jittered)
	if cj <= cr {
		t.Fatalf("irregular gather (%g) not slower than regular (%g)", cj, cr)
	}
}

func TestLargerBlocksCheaperPerByte(t *testing.T) {
	h := testHierarchy()
	s := NewState(h)
	s.SetDisabled(true)
	src, dst := buf.Alloc(1), buf.Alloc(1)
	payload := int64(1 << 20)
	small := layout.Describe(layout.Strided{Count: payload / 8, BlockLen: 8, Stride: 16})
	big := layout.Describe(layout.Strided{Count: payload / 512, BlockLen: 512, Stride: 1024})
	cSmall := s.GatherCost(src.Region(), dst.Region(), small)
	cBig := s.GatherCost(src.Region(), dst.Region(), big)
	if cBig >= cSmall {
		t.Fatalf("big-block gather (%g) not cheaper than small-block (%g)", cBig, cSmall)
	}
}

func TestStreamCost(t *testing.T) {
	s := NewState(testHierarchy())
	r := buf.Alloc(1)
	cold := s.StreamCost(r.Region(), 12e6)
	if cold < 0.9e-3 || cold > 1.1e-3 {
		t.Fatalf("stream of 12 MB at 12 GB/s = %g, want ≈1 ms", cold)
	}
	warm := s.StreamCost(r.Region(), 12e6)
	if warm >= cold {
		t.Fatalf("warm stream (%g) not faster", warm)
	}
}

func TestScatterCost(t *testing.T) {
	s := NewState(testHierarchy())
	s.SetDisabled(true)
	src, dst := buf.Alloc(1), buf.Alloc(1)
	st := layout.Describe(layout.Strided{Count: 1000, BlockLen: 8, Stride: 16})
	c := s.ScatterCost(src.Region(), dst.Region(), st)
	if c <= 0 {
		t.Fatalf("scatter cost = %g", c)
	}
	// Scatter reads contiguous, so it should cost no more than the
	// equivalent gather, which reads with stride amplification.
	g := s.GatherCost(src.Region(), dst.Region(), st)
	if c > g*1.5 {
		t.Fatalf("scatter %g unexpectedly dearer than gather %g", c, g)
	}
}

func TestZeroSizedOpsFree(t *testing.T) {
	s := NewState(testHierarchy())
	r := buf.Alloc(1)
	if s.StreamCost(r.Region(), 0) != 0 || s.CopyCost(r.Region(), r.Region(), 0) != 0 {
		t.Fatal("zero-byte op has nonzero cost")
	}
	if s.GatherCost(r.Region(), r.Region(), layout.Stats{}) != 0 {
		t.Fatal("empty gather has nonzero cost")
	}
}

func TestFlushCostPositive(t *testing.T) {
	s := NewState(testHierarchy())
	if s.FlushCost() <= 0 {
		t.Fatal("flush cost must be positive")
	}
}

// TestPipelinedChunkCost pins the two-stage pipeline bound: the
// overlapped span sits between max(pack, consume) + one fill and the
// serial sum, degenerates to the serial sum for single chunks or a
// disabled ring, and is monotone in the chunk count.
func TestPipelinedChunkCost(t *testing.T) {
	const pack, wire = 1.0, 0.6
	serial := pack + wire
	if got := PipelinedChunkCost(pack, wire, 1, 2); got != serial {
		t.Errorf("single chunk = %g, want the serial sum %g", got, serial)
	}
	if got := PipelinedChunkCost(pack, wire, 8, 0); got != serial {
		t.Errorf("depth 0 = %g, want the serial sum %g", got, serial)
	}
	for _, chunks := range []int64{2, 8, 64} {
		got := PipelinedChunkCost(pack, wire, chunks, 2)
		if got >= serial {
			t.Errorf("%d chunks: %g not below serial %g", chunks, got, serial)
		}
		slow := pack
		if wire > slow {
			slow = wire
		}
		if got < slow {
			t.Errorf("%d chunks: %g below the slower stage %g", chunks, got, slow)
		}
	}
	// Finer chunking approaches the slower-stage bound.
	coarse := PipelinedChunkCost(pack, wire, 2, 2)
	fine := PipelinedChunkCost(pack, wire, 64, 2)
	if fine >= coarse {
		t.Errorf("finer chunking (%g) not below coarser (%g)", fine, coarse)
	}
}

// TestHierarchyChunkValidation pins the promoted chunk/depth fields'
// validation and defaults.
func TestHierarchyChunkValidation(t *testing.T) {
	h := Hierarchy{LineSize: 64, LLC: 1 << 20, CopyBW: 1e9, StreamBW: 1e9, CacheBW: 1e9}
	if err := h.Validate(); err != nil {
		t.Fatalf("zero chunk/depth must validate (defaults apply): %v", err)
	}
	if h.InternalChunkSize() != DefaultInternalChunk {
		t.Errorf("InternalChunkSize = %d, want default %d", h.InternalChunkSize(), DefaultInternalChunk)
	}
	if h.ChunkPipelineDepth() != DefaultPipelineDepth {
		t.Errorf("ChunkPipelineDepth = %d, want default %d", h.ChunkPipelineDepth(), DefaultPipelineDepth)
	}
	h.InternalChunk = -1
	if err := h.Validate(); err == nil {
		t.Error("negative InternalChunk accepted")
	}
	h.InternalChunk = 0
	h.PipelineDepth = -1
	if err := h.Validate(); err == nil {
		t.Error("negative PipelineDepth accepted")
	}
}

func TestParallelCompiledGatherCheaper(t *testing.T) {
	// The parallel-pack term: a many-small-segment layout priced for a
	// multi-worker compiled pack must undercut the serial compiled
	// pack, which in turn undercuts generic interpretation. Separate
	// states keep warmth effects out of the comparison.
	st := layout.Stats{Segments: 1 << 16, Bytes: 8 << 20, Extent: 16 << 20, AvgBlock: 8, AvgGap: 8, MinBlock: 8, MaxBlock: 8, Density: 0.5}
	src, dst := buf.Alloc(1).Region(), buf.Alloc(1).Region()
	interp := NewState(testHierarchy()).GatherCost(src, dst, st)
	serial := NewState(testHierarchy()).CompiledGatherCost(src, dst, st)
	par := NewState(testHierarchy()).ParallelCompiledGatherCost(src, dst, st, 8)
	if !(par < serial && serial < interp) {
		t.Fatalf("cost ordering violated: parallel %g, serial compiled %g, interpreted %g", par, serial, interp)
	}
	// The bandwidth term saturates at ParallelBWScale, so doubling the
	// workers past saturation only shaves segment bookkeeping.
	par16 := NewState(testHierarchy()).ParallelCompiledGatherCost(src, dst, st, 16)
	if par16 > par {
		t.Fatalf("more workers cost more: %g > %g", par16, par)
	}
	if floor := float64(NewState(testHierarchy()).Hierarchy().Traffic(st)) / (testHierarchy().CopyBW * testHierarchy().parallelScale() * 1.01); par16 < floor {
		t.Fatalf("parallel cost %g beats the saturated-bandwidth floor %g", par16, floor)
	}
	// One worker must price exactly like the serial compiled pack.
	one := NewState(testHierarchy()).ParallelCompiledGatherCost(src, dst, st, 1)
	if one != serial {
		t.Fatalf("1-worker parallel cost %g != serial compiled %g", one, serial)
	}
}

func TestParallelCompiledScatterCheaper(t *testing.T) {
	st := layout.Stats{Segments: 1 << 16, Bytes: 8 << 20, Extent: 16 << 20, AvgBlock: 8, AvgGap: 8, MinBlock: 8, MaxBlock: 8, Density: 0.5}
	src, dst := buf.Alloc(1).Region(), buf.Alloc(1).Region()
	serial := NewState(testHierarchy()).CompiledScatterCost(src, dst, st)
	par := NewState(testHierarchy()).ParallelCompiledScatterCost(src, dst, st, 8)
	if par >= serial {
		t.Fatalf("parallel scatter %g not under serial %g", par, serial)
	}
}
