package memsim

import (
	"math"
	"testing"
)

func TestExpectedAttempts(t *testing.T) {
	if got := ExpectedAttempts(0, 8); got != 1 {
		t.Fatalf("clean link expects %g attempts", got)
	}
	// Unbounded geometric limit: p=0.5 → 2 attempts; a deep budget
	// should approach it.
	if got := ExpectedAttempts(0.5, 60); math.Abs(got-2) > 1e-9 {
		t.Fatalf("p=0.5 deep budget: %g attempts, want 2", got)
	}
	// Zero budget: exactly one attempt regardless of loss.
	if got := ExpectedAttempts(0.9, 0); got != 1 {
		t.Fatalf("zero budget: %g attempts", got)
	}
	if got := ExpectedAttempts(0.9, -3); got != 1 {
		t.Fatalf("negative budget: %g attempts", got)
	}
	// Monotone in both rate and budget.
	if ExpectedAttempts(0.3, 8) >= ExpectedAttempts(0.6, 8) {
		t.Fatal("attempts not monotone in loss rate")
	}
	if ExpectedAttempts(0.6, 2) >= ExpectedAttempts(0.6, 8) {
		t.Fatal("attempts not monotone in budget")
	}
}

func TestDeliveryProb(t *testing.T) {
	if DeliveryProb(0, 0) != 1 {
		t.Fatal("clean link must always deliver")
	}
	if got := DeliveryProb(0.5, 1); got != 0.75 {
		t.Fatalf("p=0.5 R=1: %g, want 0.75", got)
	}
	if DeliveryProb(0.9, 1) >= DeliveryProb(0.9, 8) {
		t.Fatal("delivery prob not monotone in budget")
	}
}

func TestExpectedBackoff(t *testing.T) {
	if ExpectedBackoff(0, 8, 1, 10) != 0 {
		t.Fatal("clean link pays backoff")
	}
	if ExpectedBackoff(0.5, 0, 1, 10) != 0 {
		t.Fatal("zero budget pays backoff")
	}
	// p=0.5, R=2, base=1, cap none: 0.5·1 + 0.25·2 = 1.
	if got := ExpectedBackoff(0.5, 2, 1, 0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("uncapped backoff %g, want 1", got)
	}
	// Cap at 1: 0.5·1 + 0.25·1 = 0.75.
	if got := ExpectedBackoff(0.5, 2, 1, 1); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("capped backoff %g, want 0.75", got)
	}
}

func TestFaultProfileLegCompounding(t *testing.T) {
	f := FaultProfile{LegLossRate: 0.01, MaxRetries: 8}
	one := f.AttemptFailProb(1)
	if math.Abs(one-0.01) > 1e-12 {
		t.Fatalf("single leg fail prob %g", one)
	}
	many := f.AttemptFailProb(64)
	if many <= one || many >= 1 {
		t.Fatalf("64-leg fail prob %g not compounding", many)
	}
	if f.TransferDeliveryProb(64) >= f.TransferDeliveryProb(1) {
		t.Fatal("delivery prob not decreasing in legs")
	}
}

func TestInflateTransfer(t *testing.T) {
	clean := FaultProfile{}
	if got := clean.InflateTransfer(3, 3, 10); got != 3 {
		t.Fatalf("clean inflation %g", got)
	}
	f := FaultProfile{LegLossRate: 0.1, MaxRetries: 8, BaseBackoff: 1e-6, MaxBackoff: 1e-3}
	got := f.InflateTransfer(3, 3, 1)
	if got <= 3 {
		t.Fatalf("lossy inflation %g not above clean", got)
	}
	// Distinct resend unit: retries replay the resend cost, not the
	// clean cost.
	cheapResend := f.InflateTransfer(3, 1, 1)
	if cheapResend >= got {
		t.Fatal("cheaper resend unit did not reduce expected time")
	}
	// Degenerate rates stay finite.
	hot := FaultProfile{LegLossRate: 5, MaxRetries: 4}
	if v := hot.InflateTransfer(1, 1, 3); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Fatalf("saturated rate produced %g", v)
	}
}
