package memsim

import (
	"math"
	"testing"

	"repro/internal/buf"
	"repro/internal/layout"
)

// TestNormalizedCostOrdering pins the engine ladder on a many-segment
// layout: the canonicalised block kernel amortises per-segment
// bookkeeping beyond the generic compiled gather, which already beats
// the interpreting loop — and the traffic term is identical, so the
// ordering is strict exactly because of the bookkeeping.
func TestNormalizedCostOrdering(t *testing.T) {
	h := testHierarchy()
	st := layout.Describe(layout.Strided{Count: 1 << 16, BlockLen: 8, Stride: 16})
	src := buf.Alloc(int(st.Extent))
	dst := buf.Alloc(int(st.Bytes))
	generic := NewState(h).GatherCost(src.Region(), dst.Region(), st)
	compiled := NewState(h).CompiledGatherCost(src.Region(), dst.Region(), st)
	norm := NewState(h).NormalizedGatherCost(src.Region(), dst.Region(), st)
	if !(norm < compiled && compiled < generic) {
		t.Fatalf("gather ladder broken: normalized %g, compiled %g, generic %g", norm, compiled, generic)
	}
	genericS := NewState(h).ScatterCost(src.Region(), dst.Region(), st)
	compiledS := NewState(h).CompiledScatterCost(src.Region(), dst.Region(), st)
	normS := NewState(h).NormalizedScatterCost(src.Region(), dst.Region(), st)
	if !(normS < compiledS && compiledS < genericS) {
		t.Fatalf("scatter ladder broken: normalized %g, compiled %g, generic %g", normS, compiledS, genericS)
	}
}

// TestParallelNormalizedCosts checks the worker-split variants scale
// the canonicalised cost down and never below the bandwidth-saturated
// bound.
func TestParallelNormalizedCosts(t *testing.T) {
	h := testHierarchy()
	st := layout.Describe(layout.Strided{Count: 1 << 16, BlockLen: 8, Stride: 16})
	src := buf.Alloc(int(st.Extent))
	dst := buf.Alloc(int(st.Bytes))
	serial := NewState(h).NormalizedGatherCost(src.Region(), dst.Region(), st)
	par := NewState(h).ParallelNormalizedGatherCost(src.Region(), dst.Region(), st, 4)
	if par >= serial {
		t.Fatalf("4-worker normalized gather %g not under serial %g", par, serial)
	}
	if floor := serial / 8; par < floor {
		t.Fatalf("4-worker normalized gather %g below saturation floor %g", par, floor)
	}
	serialS := NewState(h).NormalizedScatterCost(src.Region(), dst.Region(), st)
	parS := NewState(h).ParallelNormalizedScatterCost(src.Region(), dst.Region(), st, 4)
	if parS >= serialS {
		t.Fatalf("4-worker normalized scatter %g not under serial %g", parS, serialS)
	}
}

// TestEstimateLegLossRate round-trips the calibration: from a true
// per-leg rate, derive the exact expected counters and require the
// estimator to recover the rate.
func TestEstimateLegLossRate(t *testing.T) {
	const lambda, legs = 0.01, 5
	f := FaultProfile{LegLossRate: lambda, MaxRetries: 8}
	p := f.AttemptFailProb(legs)
	// Expected retries per delivered transfer are geometric: p/(1-p).
	const transfers = 1_000_000
	retries := int64(math.Round(transfers * p / (1 - p)))
	got, ok := EstimateLegLossRate(retries, transfers, legs)
	if !ok || math.Abs(got-lambda) > 1e-4 {
		t.Fatalf("estimated rate %g (ok=%v), want ≈%g", got, ok, lambda)
	}
	// Zero retries over real traffic is a measured-clean link.
	if r, ok := EstimateLegLossRate(0, transfers, legs); r != 0 || !ok {
		t.Fatalf("zero retries estimated rate %g (ok=%v)", r, ok)
	}
	// Zero transfers carry no evidence: explicitly not calibrated.
	if r, ok := EstimateLegLossRate(5, 0, legs); r != 0 || ok {
		t.Fatalf("zero transfers estimated rate %g (ok=%v), want not-calibrated", r, ok)
	}
	if r, ok := EstimateLegLossRate(5, transfers, 0); r != 0 || ok {
		t.Fatalf("zero legs estimated rate %g (ok=%v), want not-calibrated", r, ok)
	}
}

// TestCalibratedKeepsPricingFields checks Calibrated swaps only the
// rate, keeping the retry/backoff pricing terms.
func TestCalibratedKeepsPricingFields(t *testing.T) {
	f := FaultProfile{LegLossRate: 0.5, MaxRetries: 8, BaseBackoff: 2e-5, MaxBackoff: 2e-3}
	c, ok := f.Calibrated(100, 10_000, 3)
	if !ok {
		t.Fatal("real counters reported not-calibrated")
	}
	if c.MaxRetries != f.MaxRetries || c.BaseBackoff != f.BaseBackoff || c.MaxBackoff != f.MaxBackoff {
		t.Fatalf("Calibrated changed pricing fields: %+v", c)
	}
	if c.LegLossRate <= 0 || c.LegLossRate >= f.LegLossRate {
		t.Fatalf("Calibrated rate %g, want observed (0, %g)", c.LegLossRate, f.LegLossRate)
	}
}
