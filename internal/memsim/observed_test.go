package memsim

import (
	"math"
	"sync"
	"testing"
)

func TestObservedFitRecoversLine(t *testing.T) {
	o := NewObservedHierarchy(nil)
	// t = 2µs + n/10GB/s, sampled at several sizes.
	alpha, invBW := 2e-6, 1e-10
	for _, n := range []int64{1 << 10, 64 << 10, 1 << 20, 16 << 20} {
		o.Observe(PathTypedSend, n, alpha+invBW*float64(n))
	}
	f, ok := o.Fit(PathTypedSend)
	if !ok {
		t.Fatal("no fit after 4 samples")
	}
	if math.Abs(f.Alpha-alpha) > alpha*0.05 {
		t.Errorf("alpha %g, want ~%g", f.Alpha, alpha)
	}
	if math.Abs(f.InvBW-invBW) > invBW*0.05 {
		t.Errorf("invBW %g, want ~%g", f.InvBW, invBW)
	}
	if got, want := f.Predict(8<<20), alpha+invBW*float64(8<<20); math.Abs(got-want) > want*0.05 {
		t.Errorf("Predict(8MiB) %g, want ~%g", got, want)
	}
	if bw := f.Bandwidth(); math.Abs(bw-1e10) > 1e9 {
		t.Errorf("Bandwidth %g, want ~1e10", bw)
	}
}

func TestObservedFitNeedsMinSamples(t *testing.T) {
	o := NewObservedHierarchy(nil)
	for i := 0; i < MinObservations-1; i++ {
		o.Observe(PathTypedSend, 1<<20, 1e-4)
	}
	if _, ok := o.Fit(PathTypedSend); ok {
		t.Fatalf("fit usable at %d samples, want none under %d", MinObservations-1, MinObservations)
	}
	o.Observe(PathTypedSend, 1<<20, 1e-4)
	if _, ok := o.Fit(PathTypedSend); !ok {
		t.Fatal("no fit at MinObservations samples")
	}
}

func TestObservedFitSingleSizeDegeneratesToBandwidth(t *testing.T) {
	o := NewObservedHierarchy(nil)
	for i := 0; i < 5; i++ {
		o.Observe(PathPackedSend, 1<<20, 1e-4)
	}
	f, ok := o.Fit(PathPackedSend)
	if !ok {
		t.Fatal("no fit")
	}
	if f.Alpha != 0 {
		t.Errorf("degenerate fit alpha %g, want 0", f.Alpha)
	}
	if got := f.Predict(1 << 20); math.Abs(got-1e-4) > 1e-9 {
		t.Errorf("Predict at observed size %g, want 1e-4", got)
	}
}

func TestObservedIgnoresBadSamplesAndClamps(t *testing.T) {
	o := NewObservedHierarchy(nil)
	o.Observe(PathTypedSend, 0, 1)
	o.Observe(PathTypedSend, -5, 1)
	o.Observe(PathTypedSend, 8, -1)
	if n := o.Samples(PathTypedSend); n != 0 {
		t.Fatalf("bad samples recorded: %d", n)
	}
	// Decreasing times with size would fit a negative slope; the fit
	// must clamp to a flat non-negative prediction.
	o.Observe(PathTypedSend, 1<<10, 3e-4)
	o.Observe(PathTypedSend, 1<<20, 2e-4)
	o.Observe(PathTypedSend, 16<<20, 1e-4)
	f, ok := o.Fit(PathTypedSend)
	if !ok {
		t.Fatal("no fit")
	}
	if f.InvBW < 0 || f.Alpha < 0 {
		t.Errorf("negative coefficients survived: %+v", f)
	}
	if got := f.Predict(1 << 30); got < 0 {
		t.Errorf("negative prediction %g", got)
	}
}

func TestObservedPredictExactAtObservedSizes(t *testing.T) {
	o := NewObservedHierarchy(nil)
	// A convex cost curve no single line fits: the OLS line would
	// misprice the smallest size, but Predict at an observed size must
	// return that size's measured mean.
	samples := map[int64]float64{8 << 10: 8.5e-6, 256 << 10: 4e-5, 4 << 20: 6e-4}
	for n, s := range samples {
		o.Observe(PathTypedSend, n, s)
	}
	for n, want := range samples {
		got, ok := o.Predict(PathTypedSend, n)
		if !ok {
			t.Fatalf("no prediction at observed size %d", n)
		}
		if math.Abs(got-want) > want*1e-9 {
			t.Errorf("Predict(%d) = %g, want the observed %g", n, got, want)
		}
	}
	// Unobserved sizes fall back to the fitted line.
	f, _ := o.Fit(PathTypedSend)
	if got, _ := o.Predict(PathTypedSend, 1<<20); math.Abs(got-f.Predict(1<<20)) > 1e-12 {
		t.Errorf("off-grid Predict %g, want line %g", got, f.Predict(1<<20))
	}
}

func TestObservedConcurrent(t *testing.T) {
	o := NewObservedHierarchy(nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				o.Observe(PathTypedSend, 1<<20, 1e-4)
				o.Fit(PathTypedSend)
			}
		}()
	}
	wg.Wait()
	if n := o.Samples(PathTypedSend); n != 800 {
		t.Errorf("samples %d, want 800", n)
	}
	if paths := o.Paths(); len(paths) != 1 || paths[0] != PathTypedSend {
		t.Errorf("paths %v", paths)
	}
}
