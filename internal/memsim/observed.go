package memsim

import (
	"fmt"
	"sort"
	"sync"
)

// Transfer-path names shared between the runtime (which records
// observations) and the recommendation engine (which consumes fits).
// Each names one engine whose end-to-end cost a persistent operation
// can observe on the virtual clock.
const (
	// PathTypedSend is the direct derived-datatype send: the chunked
	// staging path of SendType, the cost the Hunold/Träff guideline
	// bounds by pack+send.
	PathTypedSend = "typed-send"
	// PathPackedSend is an explicit pack followed by a contiguous send
	// of the packed bytes — the decomposition side of the guideline.
	PathPackedSend = "packed-send"
	// PathContigSend is the contiguous reference send.
	PathContigSend = "contig-send"
)

// MinObservations is how many samples a path needs before its fit
// replaces the calibrated prediction: below it the observed hierarchy
// reports no fit and callers stay on the static model.
const MinObservations = 3

// Fit is a latency+bandwidth line fitted to one path's observed
// samples: a transfer of n bytes is predicted to cost
// Alpha + InvBW·n seconds.
type Fit struct {
	Path    string
	Samples int
	// Alpha is the fixed per-message cost in seconds; InvBW the
	// marginal cost in seconds per byte. Both are clamped non-negative
	// (a fitted negative latency or bandwidth term is measurement
	// noise, not physics).
	Alpha float64
	InvBW float64
}

// Predict returns the fitted cost of an n-byte transfer.
func (f Fit) Predict(n int64) float64 {
	if n < 0 {
		n = 0
	}
	return f.Alpha + f.InvBW*float64(n)
}

// Bandwidth returns the fitted asymptotic bandwidth in bytes/second
// (0 when the marginal term is zero).
func (f Fit) Bandwidth() float64 {
	if f.InvBW <= 0 {
		return 0
	}
	return 1 / f.InvBW
}

// String formats the fit for reports.
func (f Fit) String() string {
	return fmt.Sprintf("%s: %d samples, alpha %.3gs, %.3g GB/s", f.Path, f.Samples, f.Alpha, f.Bandwidth()/1e9)
}

// ObservedHierarchy accumulates measured (bytes, seconds) samples per
// transfer path and fits a latency+bandwidth line to each: the
// self-tuning loop that lets a recommender degrade from calibrated to
// observed per installation. Persistent operations feed it their
// per-Start virtual-clock cost (mpi.Comm.ObserveInto); once a path has
// MinObservations samples, Fit returns an online-fitted cost model
// that core.RecommendTuned prefers over the static prediction.
//
// The accumulator is O(1) per sample (running OLS moments) and safe
// for concurrent use by all ranks of a run.
type ObservedHierarchy struct {
	mu    sync.Mutex
	base  *Hierarchy
	paths map[string]*pathMoments
}

// pathMoments holds the running OLS moments of one path's samples,
// x = bytes, y = seconds, plus per-size buckets so predictions at an
// observed size return the measured mean exactly instead of the
// line's interpolation (transfer cost is only piecewise affine across
// the eager/rendezvous regimes, so the global line can misorder two
// engines at a size where both were actually measured).
type pathMoments struct {
	n                        int
	sumX, sumY, sumXX, sumXY float64
	minX, maxX               float64
	buckets                  map[int64]*sizeBucket
}

// sizeBucket accumulates the samples of one exact transfer size.
type sizeBucket struct {
	n   int
	sum float64
}

// NewObservedHierarchy creates an empty observed model over a
// calibrated base hierarchy (may be nil when only fits are wanted).
func NewObservedHierarchy(base *Hierarchy) *ObservedHierarchy {
	return &ObservedHierarchy{base: base, paths: make(map[string]*pathMoments)}
}

// Base returns the calibrated hierarchy the observations refine.
func (o *ObservedHierarchy) Base() *Hierarchy { return o.base }

// Observe records one measured transfer: path moved bytes in seconds
// of virtual time. Non-positive sizes and negative times are ignored.
func (o *ObservedHierarchy) Observe(path string, bytes int64, seconds float64) {
	if bytes <= 0 || seconds < 0 {
		return
	}
	x, y := float64(bytes), seconds
	o.mu.Lock()
	defer o.mu.Unlock()
	m := o.paths[path]
	if m == nil {
		m = &pathMoments{minX: x, maxX: x, buckets: make(map[int64]*sizeBucket)}
		o.paths[path] = m
	}
	b := m.buckets[bytes]
	if b == nil {
		b = &sizeBucket{}
		m.buckets[bytes] = b
	}
	b.n++
	b.sum += y
	if x < m.minX {
		m.minX = x
	}
	if x > m.maxX {
		m.maxX = x
	}
	m.n++
	m.sumX += x
	m.sumY += y
	m.sumXX += x * x
	m.sumXY += x * y
}

// Samples returns how many observations path has accumulated.
func (o *ObservedHierarchy) Samples(path string) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	if m := o.paths[path]; m != nil {
		return m.n
	}
	return 0
}

// Paths lists the observed path names in sorted order.
func (o *ObservedHierarchy) Paths() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]string, 0, len(o.paths))
	for k := range o.paths {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Fit returns the fitted cost line of a path, and whether the path has
// enough samples (MinObservations) for the fit to be usable. With size
// variation the line is the ordinary least-squares fit; when every
// sample is the same size the fit degenerates to a pure bandwidth
// through the origin, exact at the observed size.
func (o *ObservedHierarchy) Fit(path string) (Fit, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	m := o.paths[path]
	if m == nil || m.n < MinObservations {
		return Fit{}, false
	}
	f := Fit{Path: path, Samples: m.n}
	n := float64(m.n)
	det := n*m.sumXX - m.sumX*m.sumX
	if m.maxX > m.minX && det > 0 {
		f.InvBW = (n*m.sumXY - m.sumX*m.sumY) / det
		f.Alpha = (m.sumY - f.InvBW*m.sumX) / n
	} else {
		// One observed size: all cost is marginal at that size.
		f.InvBW = m.sumY / m.sumX
	}
	if f.InvBW < 0 {
		// A negative marginal cost is noise; keep the mean as a flat
		// per-message prediction instead.
		f.InvBW = 0
		f.Alpha = m.sumY / n
	}
	if f.Alpha < 0 {
		f.Alpha = 0
	}
	return f, true
}

// Predict returns the observed cost of an n-byte transfer on a path,
// or false when the path has too few samples (MinObservations in
// total). At a size that was itself observed the prediction is the
// measured mean of that size's samples — exact where it matters most,
// since a recommender is usually asked about the transfers it just
// watched; anywhere else it is the fitted line.
func (o *ObservedHierarchy) Predict(path string, n int64) (float64, bool) {
	o.mu.Lock()
	m := o.paths[path]
	if m != nil && m.n >= MinObservations {
		if b := m.buckets[n]; b != nil && b.n > 0 {
			mean := b.sum / float64(b.n)
			o.mu.Unlock()
			return mean, true
		}
	}
	o.mu.Unlock()
	f, ok := o.Fit(path)
	if !ok {
		return 0, false
	}
	return f.Predict(n), true
}
