package memsim

import (
	"testing"

	"repro/internal/buf"
	"repro/internal/layout"
)

// everyOtherStats is the paper's canonical every-other-double layout
// at 1 MiB of payload.
func everyOtherStats() layout.Stats {
	return layout.Stats{Segments: 1 << 17, Bytes: 1 << 20, Extent: 2 << 20, AvgBlock: 8, AvgGap: 8, MinBlock: 8, MaxBlock: 8, Density: 0.5}
}

func contigStats(n int64) layout.Stats {
	return layout.Stats{Segments: 1, Bytes: n, Extent: n, AvgBlock: float64(n), MinBlock: n, MaxBlock: n, Density: 1}
}

// TestFusedCopyCostUnderStagedSum pins the point of the fused engine:
// one pass must price below the staged gather+scatter pipeline it
// replaces, for both typed→contig and typed→typed destinations, while
// staying at or above the pure traffic floor.
func TestFusedCopyCostUnderStagedSum(t *testing.T) {
	st := everyOtherStats()
	n := st.Bytes
	srcR, stagingR, dstR := buf.Alloc(1).Region(), buf.Alloc(1).Region(), buf.Alloc(1).Region()

	for _, dstSt := range []layout.Stats{contigStats(n), st} {
		fused := NewState(testHierarchy()).FusedCopyCost(srcR, dstR, st, dstSt)
		stagedState := NewState(testHierarchy())
		staged := stagedState.CompiledGatherCost(srcR, stagingR, st) +
			stagedState.CompiledScatterCost(stagingR, dstR, dstSt)
		if fused >= staged {
			t.Fatalf("fused %g not under staged gather+scatter %g (dst segments %d)", fused, staged, dstSt.Segments)
		}
		h := testHierarchy()
		floor := float64(h.Traffic(st)) / h.CopyBW
		// Prefetch degradation can push the fused pass above the naive
		// floor, but it must never beat raw traffic at full bandwidth.
		if fused < floor*0.99 {
			t.Fatalf("fused %g beats the traffic floor %g", fused, floor)
		}
	}
}

// TestFusedCopyCostZero pins the trivial cases.
func TestFusedCopyCostZero(t *testing.T) {
	s := NewState(testHierarchy())
	if c := s.FusedCopyCost(1, 2, layout.Stats{}, layout.Stats{}); c != 0 {
		t.Fatalf("empty fused copy priced %g", c)
	}
}

// TestParallelBWScaleProfileField pins the promotion of the
// saturation cap to a per-profile field: a hierarchy with a higher
// cap prices a saturated parallel pack cheaper, and the zero value
// falls back to DefaultParallelBWScale.
func TestParallelBWScaleProfileField(t *testing.T) {
	st := everyOtherStats()
	src, dst := buf.Alloc(1).Region(), buf.Alloc(1).Region()

	low := testHierarchy()
	low.ParallelBWScale = 2
	high := testHierarchy()
	high.ParallelBWScale = 8
	costLow := NewState(low).ParallelCompiledGatherCost(src, dst, st, 16)
	costHigh := NewState(high).ParallelCompiledGatherCost(src, dst, st, 16)
	if costHigh >= costLow {
		t.Fatalf("higher ParallelBWScale did not cut the saturated cost: %g >= %g", costHigh, costLow)
	}

	def := testHierarchy()
	def.ParallelBWScale = 0
	if got, want := def.parallelScale(), DefaultParallelBWScale; got != want {
		t.Fatalf("zero-value scale = %g, want default %g", got, want)
	}
	if got := def.parallelSpeedup(16); got != DefaultParallelBWScale {
		t.Fatalf("defaulted speedup at saturation = %g, want %g", got, DefaultParallelBWScale)
	}
	if got := high.parallelSpeedup(4); got != 4 {
		t.Fatalf("under-saturation speedup = %g, want worker count 4", got)
	}
}
