package memsim

import (
	"testing"

	"repro/internal/buf"
	"repro/internal/layout"
)

// everyOtherStats is the paper's canonical every-other-double layout
// at 1 MiB of payload.
func everyOtherStats() layout.Stats {
	return layout.Stats{Segments: 1 << 17, Bytes: 1 << 20, Extent: 2 << 20, AvgBlock: 8, AvgGap: 8, MinBlock: 8, MaxBlock: 8, Density: 0.5}
}

func contigStats(n int64) layout.Stats {
	return layout.Stats{Segments: 1, Bytes: n, Extent: n, AvgBlock: float64(n), MinBlock: n, MaxBlock: n, Density: 1}
}

// TestFusedCopyCostUnderStagedSum pins the point of the fused engine:
// one pass must price below the staged gather+scatter pipeline it
// replaces, for both typed→contig and typed→typed destinations, while
// staying at or above the pure traffic floor.
func TestFusedCopyCostUnderStagedSum(t *testing.T) {
	st := everyOtherStats()
	n := st.Bytes
	srcR, stagingR, dstR := buf.Alloc(1).Region(), buf.Alloc(1).Region(), buf.Alloc(1).Region()

	for _, dstSt := range []layout.Stats{contigStats(n), st} {
		fused := NewState(testHierarchy()).FusedCopyCost(srcR, dstR, st, dstSt)
		stagedState := NewState(testHierarchy())
		staged := stagedState.CompiledGatherCost(srcR, stagingR, st) +
			stagedState.CompiledScatterCost(stagingR, dstR, dstSt)
		if fused >= staged {
			t.Fatalf("fused %g not under staged gather+scatter %g (dst segments %d)", fused, staged, dstSt.Segments)
		}
		h := testHierarchy()
		floor := float64(h.Traffic(st)) / h.CopyBW
		// Prefetch degradation can push the fused pass above the naive
		// floor, but it must never beat raw traffic at full bandwidth.
		if fused < floor*0.99 {
			t.Fatalf("fused %g beats the traffic floor %g", fused, floor)
		}
	}
}

// TestFusedCopyCostZero pins the trivial cases.
func TestFusedCopyCostZero(t *testing.T) {
	s := NewState(testHierarchy())
	if c := s.FusedCopyCost(1, 2, layout.Stats{}, layout.Stats{}); c != 0 {
		t.Fatalf("empty fused copy priced %g", c)
	}
}

// TestParallelBWScaleProfileField pins the promotion of the
// saturation cap to a per-profile field: a hierarchy with a higher
// cap prices a saturated parallel pack cheaper, and the zero value
// falls back to DefaultParallelBWScale.
func TestParallelBWScaleProfileField(t *testing.T) {
	st := everyOtherStats()
	src, dst := buf.Alloc(1).Region(), buf.Alloc(1).Region()

	low := testHierarchy()
	low.ParallelBWScale = 2
	high := testHierarchy()
	high.ParallelBWScale = 8
	costLow := NewState(low).ParallelCompiledGatherCost(src, dst, st, 16)
	costHigh := NewState(high).ParallelCompiledGatherCost(src, dst, st, 16)
	if costHigh >= costLow {
		t.Fatalf("higher ParallelBWScale did not cut the saturated cost: %g >= %g", costHigh, costLow)
	}

	def := testHierarchy()
	def.ParallelBWScale = 0
	if got, want := def.parallelScale(), DefaultParallelBWScale; got != want {
		t.Fatalf("zero-value scale = %g, want default %g", got, want)
	}
	if got := def.parallelSpeedup(16); got != DefaultParallelBWScale {
		t.Fatalf("defaulted speedup at saturation = %g, want %g", got, DefaultParallelBWScale)
	}
	if got := high.parallelSpeedup(4); got != 4 {
		t.Fatalf("under-saturation speedup = %g, want worker count 4", got)
	}
}

// TestParallelFusedCopyCostSpeedup pins the parallel fused pricer: more
// workers cost less, saturating at the hierarchy's ParallelBWScale.
func TestParallelFusedCopyCostSpeedup(t *testing.T) {
	st := everyOtherStats()
	srcR, dstR := buf.Alloc(1).Region(), buf.Alloc(1).Region()
	serial := NewState(testHierarchy()).FusedCopyCost(srcR, dstR, st, st)
	par4 := NewState(testHierarchy()).ParallelFusedCopyCost(srcR, dstR, st, st, 4)
	if par4 >= serial {
		t.Fatalf("4-worker fused pass %g not under serial %g", par4, serial)
	}
	// Past the saturation cap, extra workers only shave bookkeeping.
	h := testHierarchy()
	cap16 := NewState(testHierarchy()).ParallelFusedCopyCost(srcR, dstR, st, st, 16)
	floor := float64(h.Traffic(st)) / (h.CopyBW * h.parallelScale())
	if cap16 < floor*0.2 {
		t.Fatalf("16-worker fused pass %g far below the saturated floor %g", cap16, floor)
	}
	one := NewState(testHierarchy()).ParallelFusedCopyCost(srcR, dstR, st, st, 1)
	if one != serial {
		t.Fatalf("1-worker parallel pricer %g differs from FusedCopyCost %g", one, serial)
	}
}

// TestCollectiveLegCosts pins the collective terms: the staged leg
// (pack + unpack) must price above the fused leg for the canonical
// strided layout, and the fan composers must grow with rank count and
// hold their p=1 identities.
func TestCollectiveLegCosts(t *testing.T) {
	st := everyOtherStats()
	srcR, dstR := buf.Alloc(1).Region(), buf.Alloc(1).Region()
	fused := NewState(testHierarchy()).FusedCollectiveLegCost(srcR, dstR, st, st, 1)
	staged := NewState(testHierarchy()).StagedCollectiveLegCost(srcR, dstR, st, st)
	if fused >= staged {
		t.Fatalf("fused leg %g not under staged leg %g", fused, staged)
	}

	self, leg, wire, over := 1e-4, 2e-4, 1e-4, 1e-6
	if got := LinearFanCost(1, self, leg, wire, over); got != self {
		t.Fatalf("LinearFanCost(1) = %g, want the self leg %g", got, self)
	}
	if got := TreeFanCost(1, self, leg, wire, over); got != self {
		t.Fatalf("TreeFanCost(1) = %g, want the self leg %g", got, self)
	}
	lin4, lin8 := LinearFanCost(4, self, leg, wire, over), LinearFanCost(8, self, leg, wire, over)
	if lin8 <= lin4 {
		t.Fatalf("linear fan not monotonic: p=8 %g vs p=4 %g", lin8, lin4)
	}
	tree8 := TreeFanCost(8, self, leg, wire, over)
	if tree8 >= lin8 {
		t.Fatalf("tree fan %g not under linear fan %g at p=8 for latency-shaped legs", tree8, lin8)
	}
}
