package memsim

import "math"

// FaultProfile prices the recovery machinery of the fault-injecting
// fabric (internal/simnet) for the steady-state cost model: a lossy
// link drops, corrupts or truncates delivery legs at a per-leg rate,
// and the runtime recovers by checksum-verified, ACKed retransmission
// with exponential backoff under a finite retry budget.
//
// The model is first-order, matching the executor's actual recovery
// unit: integrity is checked over the whole payload stream, so a
// resend-class fault on ANY leg of a transfer (the rendezvous envelope
// plus every internal-chunk data leg) forces the entire transfer to be
// retried. Per-attempt failure therefore compounds with the number of
// legs, and chunked staging pays a reliability tax on lossy links that
// the wire-time model alone does not show.
type FaultProfile struct {
	// LegLossRate is the per-delivery-leg probability of a
	// resend-class fault (drop, corrupt, or truncate — the
	// simnet.Fault.NeedsResend class). simnet.UniformFaults(seed, r)
	// produces a resend-class rate of r/2.
	LegLossRate float64

	// MaxRetries is the retry budget per transfer, matching
	// mpi.RetryPolicy.MaxRetries (negative means no retries).
	MaxRetries int

	// BaseBackoff and MaxBackoff price the exponential backoff between
	// attempts, in seconds (mpi.RetryPolicy uses virtual nanoseconds;
	// the caller converts).
	BaseBackoff float64
	MaxBackoff  float64
}

// Enabled reports whether the profile injects any faults at all.
func (f FaultProfile) Enabled() bool { return f.LegLossRate > 0 }

// rate clamps the leg-loss rate to [0, 1).
func (f FaultProfile) rate() float64 {
	switch {
	case f.LegLossRate < 0:
		return 0
	case f.LegLossRate >= 1:
		return math.Nextafter(1, 0)
	}
	return f.LegLossRate
}

// retries normalises the budget (negative = none).
func (f FaultProfile) retries() int {
	if f.MaxRetries < 0 {
		return 0
	}
	return f.MaxRetries
}

// AttemptFailProb returns the probability that one transfer attempt
// staged through legs faultable delivery legs fails and must be
// retried: 1 - (1-λ)^legs. An eager message is a single leg; a
// rendezvous transfer is its envelope plus one leg per internal chunk.
func (f FaultProfile) AttemptFailProb(legs int64) float64 {
	if legs <= 0 {
		return 0
	}
	return 1 - math.Pow(1-f.rate(), float64(legs))
}

// ExpectedAttempts returns the expected number of attempts charged for
// a transfer whose attempts fail independently with probability p,
// truncated at the retry budget: Σ_{k=0}^{R} p^k = (1-p^{R+1})/(1-p).
// Attempts beyond the first success are never made; attempts beyond
// the budget are abandoned (see DeliveryProb).
func ExpectedAttempts(p float64, maxRetries int) float64 {
	if p <= 0 {
		return 1
	}
	if maxRetries < 0 {
		maxRetries = 0
	}
	if p >= 1 {
		return float64(maxRetries + 1)
	}
	return (1 - math.Pow(p, float64(maxRetries+1))) / (1 - p)
}

// DeliveryProb returns the probability a transfer completes within the
// retry budget: 1 - p^{R+1}.
func DeliveryProb(p float64, maxRetries int) float64 {
	if p <= 0 {
		return 1
	}
	if maxRetries < 0 {
		maxRetries = 0
	}
	return 1 - math.Pow(p, float64(maxRetries+1))
}

// ExpectedBackoff returns the expected total backoff wait, in seconds,
// under exponential backoff capped at max: attempt k+1's wait of
// min(base·2^{k-1}, max) is paid only when the first k attempts all
// failed, i.e. with probability p^k.
func ExpectedBackoff(p float64, maxRetries int, base, max float64) float64 {
	if p <= 0 || maxRetries <= 0 || base <= 0 {
		return 0
	}
	wait, pk, total := base, p, 0.0
	for k := 1; k <= maxRetries; k++ {
		w := wait
		if max > 0 && w > max {
			w = max
		}
		total += pk * w
		wait *= 2
		pk *= p
	}
	return total
}

// InflateTransfer returns the fault-adjusted expected one-way time of
// a transfer: the clean-run cost, plus the expected extra attempts
// (each re-running the resend cost — the executor's retry closure
// replays the full pack/inject pass), plus the expected backoff.
func (f FaultProfile) InflateTransfer(clean, resend float64, legs int64) float64 {
	if !f.Enabled() || legs <= 0 {
		return clean
	}
	p := f.AttemptFailProb(legs)
	extra := ExpectedAttempts(p, f.retries()) - 1
	return clean + extra*resend + ExpectedBackoff(p, f.retries(), f.BaseBackoff, f.MaxBackoff)
}

// TransferDeliveryProb returns the probability a transfer staged
// through legs delivery legs completes within the retry budget.
func (f FaultProfile) TransferDeliveryProb(legs int64) float64 {
	if !f.Enabled() || legs <= 0 {
		return 1
	}
	return DeliveryProb(f.AttemptFailProb(legs), f.retries())
}

// SelectiveInflateTransfer returns the fault-adjusted expected
// one-way time of a transfer recovered per chunk instead of per
// transfer: the packed stream travels as chunks chunks, each carrying
// its own checksum, and a damaged chunk replays only its own
// chunkResend cost (the selective-retransmission engine). The backoff
// rounds are still shared — one retransmission round covers every
// chunk NACKed in the attempt — so they compound with the probability
// ANY chunk was damaged, while the replay work compounds only with
// the per-chunk loss.
func (f FaultProfile) SelectiveInflateTransfer(clean, chunkResend float64, chunks int64) float64 {
	if !f.Enabled() || chunks <= 0 {
		return clean
	}
	extraPerChunk := ExpectedAttempts(f.rate(), f.retries()) - 1
	pAny := f.AttemptFailProb(chunks)
	return clean + float64(chunks)*extraPerChunk*chunkResend +
		ExpectedBackoff(pAny, f.retries(), f.BaseBackoff, f.MaxBackoff)
}

// SelectiveDeliveryProb returns the probability a chunked transfer
// recovered per chunk completes within the per-chunk retry budget:
// every chunk must land, and each retries independently.
func (f FaultProfile) SelectiveDeliveryProb(chunks int64) float64 {
	if !f.Enabled() || chunks <= 0 {
		return 1
	}
	return math.Pow(DeliveryProb(f.rate(), f.retries()), float64(chunks))
}

// DepthLossExposure returns the per-attempt failure probability of a
// store-and-forward path depth hops deep, each hop staged through
// legsPerHop faultable legs: the per-leg terms compound across the
// whole path, which is why deep fan trees lose reliability (and pay
// retries) faster than flat rings as the fault rate climbs.
func (f FaultProfile) DepthLossExposure(depth int, legsPerHop int64) float64 {
	if depth <= 0 || legsPerHop <= 0 {
		return 0
	}
	return f.AttemptFailProb(int64(depth) * legsPerHop)
}

// EstimateLegLossRate inverts AttemptFailProb from observed recovery
// counters: across transfers completed transfers that needed retries
// extra attempts, the per-attempt failure fraction is
// p̂ = retries/(transfers+retries), and with legs faultable delivery
// legs per attempt the per-leg rate solving p̂ = 1-(1-λ)^legs is
// λ̂ = 1-(1-p̂)^(1/legs). This is how a model panel calibrates its
// FaultProfile from what the fabric actually did instead of what the
// injector was configured to do. The second result reports whether
// the counters could calibrate anything at all: with zero completed
// transfers (or a degenerate leg count) there is no evidence, and the
// zero rate returned must not be read as "measured clean".
func EstimateLegLossRate(retries, transfers, legs int64) (float64, bool) {
	if transfers <= 0 || legs <= 0 {
		return 0, false
	}
	if retries <= 0 {
		return 0, true
	}
	p := float64(retries) / float64(transfers+retries)
	if p >= 1 {
		p = math.Nextafter(1, 0)
	}
	return 1 - math.Pow(1-p, 1/float64(legs)), true
}

// Calibrated returns a copy of the profile with its leg-loss rate
// replaced by the estimate observed over (retries, transfers, legs) —
// the retry/backoff pricing fields are kept. The second result is
// false when the counters carry no evidence (no completed transfers):
// the returned profile is then the not-calibrated zero-rate state.
func (f FaultProfile) Calibrated(retries, transfers, legs int64) (FaultProfile, bool) {
	rate, ok := EstimateLegLossRate(retries, transfers, legs)
	f.LegLossRate = rate
	return f, ok
}
