// Package core implements the paper's contribution as a reusable
// library: the eight schemes for sending non-contiguous data that the
// study compares (§2), behind one Runner interface driven by the
// ping-pong harness, plus the recommendation engine that
// operationalises the paper's conclusion (§5).
//
// Scheme ↔ paper legend mapping:
//
//	Reference    "reference"   contiguous MPI_Send baseline
//	Copying      "copying"     manual gather loop + MPI_Send
//	Buffered     "buffered"    MPI_Buffer_attach + MPI_Bsend of a derived type
//	VectorType   "vector type" MPI_Type_vector sent directly
//	Subarray     "subarray"    MPI_Type_create_subarray sent directly
//	OneSided     "onesided"    MPI_Put of a derived type between MPI_Win_fence pairs
//	PackElement  "packing(e)"  one MPI_Pack call per element, send the buffer
//	PackVector   "packing(v)"  one MPI_Pack call on a vector type, send the buffer
//
// Beyond the paper's eight, PackCompiled ("packing(c)") packs through
// the compiled pack-plan engine (internal/datatype/plan.go): the same
// single pack call as packing(v), but executed by a specialized kernel
// with amortised per-segment bookkeeping instead of generic
// interpretation — the compiled-vs-interpreted comparison column.
//
// Sendv ("sendv") is the tenth scheme: the fused zero-copy rendezvous
// (mpi.SendvType), where the compiled plan scatters the sender's
// layout straight into the receiver's buffer in one pass — no staging
// buffer, no MPI-internal chunking, no receive-side unpack. It is the
// engine-level answer to the paper's finding that the redundant
// software copy, not the wire, is what non-contiguous sends pay for.
//
// TypedPipelined ("pipelined") is the eleventh: the software-pipelined
// typed send (mpi.SendpType). The paper's §2.3 observes the chunked
// derived-type send serialising pack and inject — and that pipelining
// the two stages would recover the reference rate, which "in practice
// we don't see". The pipelined scheme realises that overlap in
// software: the rendezvous chunk loop runs on a slot ring with a pack
// worker a configurable depth ahead of injection, so the span
// collapses to the two-stage pipeline bound while the transfer still
// stages through MPI-internal chunks (unlike sendv, which needs a
// scatter-capable receive path).
package core

import (
	"fmt"
	"sort"
)

// Scheme identifies one of the paper's send schemes.
type Scheme int

// The eight schemes of the study, in the order of the figures'
// legend, plus the compiled-pack, fused-rendezvous and
// pipelined-typed schemes appended after them.
const (
	Reference Scheme = iota
	Copying
	Buffered
	VectorType
	Subarray
	OneSided
	PackElement
	PackVector
	PackCompiled
	Sendv
	TypedPipelined
)

var schemeNames = map[Scheme]string{
	Reference:      "reference",
	Copying:        "copying",
	Buffered:       "buffered",
	VectorType:     "vector type",
	Subarray:       "subarray",
	OneSided:       "onesided",
	PackElement:    "packing(e)",
	PackVector:     "packing(v)",
	PackCompiled:   "packing(c)",
	Sendv:          "sendv",
	TypedPipelined: "pipelined",
}

// String returns the paper's legend label for the scheme.
func (s Scheme) String() string {
	if n, ok := schemeNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Schemes lists all schemes in legend order.
func Schemes() []Scheme {
	return []Scheme{Reference, Copying, Buffered, VectorType, Subarray, OneSided, PackElement, PackVector, PackCompiled, Sendv, TypedPipelined}
}

// SchemeByName resolves a legend label (or a few aliases) to a Scheme.
func SchemeByName(name string) (Scheme, error) {
	aliases := map[string]Scheme{
		"reference":   Reference,
		"copying":     Copying,
		"copy":        Copying,
		"buffered":    Buffered,
		"bsend":       Buffered,
		"vector type": VectorType,
		"vector":      VectorType,
		"subarray":    Subarray,
		"onesided":    OneSided,
		"one-sided":   OneSided,
		"packing(e)":  PackElement,
		"packing(v)":  PackVector,
		"packing(c)":  PackCompiled,
		"compiled":    PackCompiled,
		"sendv":       Sendv,
		"fused":       Sendv,
		"pipelined":   TypedPipelined,
		"pipeline":    TypedPipelined,
	}
	if s, ok := aliases[name]; ok {
		return s, nil
	}
	known := make([]string, 0, len(aliases))
	for k := range aliases {
		known = append(known, k)
	}
	sort.Strings(known)
	return 0, fmt.Errorf("core: unknown scheme %q (known: %v)", name, known)
}

// NonContiguous reports whether the scheme actually transfers a
// non-contiguous layout (everything except the reference baseline).
func (s Scheme) NonContiguous() bool { return s != Reference }
