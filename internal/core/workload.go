package core

import (
	"fmt"

	"repro/internal/datatype"
	"repro/internal/layout"
)

// ElemSize is the element size of the benchmark workloads: float64,
// as in the paper.
const ElemSize = 8

// Workload describes the strided payload of one measurement: Count
// blocks of BlockLen float64 elements, block starts Stride elements
// apart. The paper's canonical case ("the very simplest case of a
// derived type", §4.7) is BlockLen 1, Stride 2 — every other element.
type Workload struct {
	Count    int
	BlockLen int
	Stride   int
	// Jitter in (0,1] makes the inter-block gaps irregular by up to
	// ±Jitter of the nominal gap (element-aligned, deterministic),
	// the §4.7 "less regular spacing" study. Zero means the exact
	// stride.
	Jitter float64
	// Virtual makes the payload length-only: all protocol steps and
	// costs happen, but no bytes are materialised. The harness turns
	// this on above its real-size cap so the 10⁹-byte end of the
	// paper's sweeps stays laptop-sized.
	Virtual bool
}

// Validate checks the geometry.
func (w Workload) Validate() error {
	switch {
	case w.Count < 0 || w.BlockLen <= 0 || w.Stride <= 0:
		return fmt.Errorf("core: bad workload %+v", w)
	case w.Stride < w.BlockLen:
		return fmt.Errorf("core: workload stride %d under block length %d", w.Stride, w.BlockLen)
	case w.Jitter < 0 || w.Jitter > 1:
		return fmt.Errorf("core: workload jitter %v outside [0,1]", w.Jitter)
	}
	return nil
}

// Bytes returns the payload size: the bytes actually transferred.
func (w Workload) Bytes() int64 {
	return int64(w.Count) * int64(w.BlockLen) * ElemSize
}

// ExtentBytes returns the span of the source buffer the workload
// needs.
func (w Workload) ExtentBytes() int64 {
	if w.Count == 0 {
		return 0
	}
	return (int64(w.Count-1)*int64(w.Stride) + int64(w.BlockLen)) * ElemSize
}

// Elems returns the element count of the payload.
func (w Workload) Elems() int { return w.Count * w.BlockLen }

// SrcBytes returns the source allocation size shared by all schemes:
// Count whole strides (which covers both the vector type's extent and
// the subarray type's full parent matrix), widened when jitter pushes
// blocks past the nominal extent.
func (w Workload) SrcBytes() int64 {
	n := int64(w.Count) * int64(w.Stride) * ElemSize
	if w.Jitter > 0 {
		if e := w.Layout().Extent(); e > n {
			n = e
		}
	}
	return n
}

// Layout returns the workload's geometric layout in bytes: an exact
// stride, or the deterministic jittered variant for the §4.7 study.
// Jittered gaps stay element-aligned so derived types remain valid.
func (w Workload) Layout() layout.Layout {
	if w.Jitter > 0 {
		elems := layout.Jittered(int64(w.Count), int64(w.BlockLen), int64(w.Stride), w.Jitter)
		segs := layout.Segments(elems)
		for i := range segs {
			segs[i].Off *= ElemSize
			segs[i].Len *= ElemSize
		}
		return layout.MustIndexed(segs)
	}
	return layout.Strided{
		Count:    int64(w.Count),
		BlockLen: int64(w.BlockLen) * ElemSize,
		Stride:   int64(w.Stride) * ElemSize,
	}
}

// ForBytes builds the canonical every-other-element workload whose
// payload is at least n bytes (rounded up to a whole element).
func ForBytes(n int64) Workload {
	count := int((n + ElemSize - 1) / ElemSize)
	if count < 1 {
		count = 1
	}
	return Workload{Count: count, BlockLen: 1, Stride: 2}
}

// VectorType builds the derived type describing the workload: an
// MPI_Type_vector for exact strides, an MPI_Type_create_hindexed for
// jittered ones.
func (w Workload) VectorType() (*datatype.Type, error) {
	if w.Jitter > 0 {
		var blocklens []int
		var displs []int64
		w.Layout().ForEach(func(s layout.Segment) bool {
			blocklens = append(blocklens, int(s.Len/ElemSize))
			displs = append(displs, s.Off)
			return true
		})
		ty, err := datatype.Hindexed(blocklens, displs, datatype.Float64)
		if err != nil {
			return nil, err
		}
		return ty, ty.Commit()
	}
	ty, err := datatype.Vector(w.Count, w.BlockLen, w.Stride, datatype.Float64)
	if err != nil {
		return nil, err
	}
	return ty, ty.Commit()
}

// SubarrayType builds the MPI_Type_create_subarray equivalent: a
// Count×BlockLen block out of a Count×Stride element matrix — the
// same geometry as the vector type, constructed the subarray way, so
// the "subarray" curve isolates constructor overheads rather than
// layout differences, as in the paper.
func (w Workload) SubarrayType() (*datatype.Type, error) {
	if w.Jitter > 0 {
		return nil, fmt.Errorf("core: a subarray cannot describe a jittered layout")
	}
	count := w.Count
	if count == 0 {
		count = 1
	}
	ty, err := datatype.Subarray(
		[]int{count, w.Stride},
		[]int{w.Count, w.BlockLen},
		[]int{0, 0},
		datatype.OrderC,
		datatype.Float64,
	)
	if err != nil {
		return nil, err
	}
	return ty, ty.Commit()
}
