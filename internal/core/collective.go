package core

import (
	"fmt"

	"repro/internal/datatype"
	"repro/internal/layout"
	"repro/internal/memsim"
	"repro/internal/perfmodel"
)

// CollectiveCostModel prices a p-rank fan collective (the
// gather/scatter shape) of the canonical every-other-double layout on
// one installation, comparing the two ways an application can move
// non-contiguous rank layouts through a collective:
//
//   - typed-collective: the layout-aware collectives
//     (mpi.GatherType & co.) — remote legs ride the fused sendv
//     rendezvous past the eager limit and the root's self-leg is a
//     single fused copy, so every payload crosses each memory system
//     once;
//   - packed-then-collective: pack every rank's layout explicitly
//     (compiled engine), run the classic contiguous collective over
//     the packed slots, unpack at the far side — the two extra memory
//     passes the typed path removes.
//
// Leg costs come from the memsim collective terms
// (FusedCollectiveLegCost, StagedCollectiveLegCost) and compose across
// ranks with the fan shape the engine would pick
// (perfmodel.CollectiveTreeLimit): a binomial tree for latency-bound
// legs, the linear fan for bandwidth-bound ones.
type CollectiveCostModel struct {
	Ranks int
	// Bytes is the per-rank payload size.
	Bytes int64
	// Workers is the parallel fan-out the fused/compiled engines would
	// use per leg (1 = serial).
	Workers int
	// Tree reports whether the engine would fan over the binomial tree
	// at this size (small legs) instead of the linear fan.
	Tree bool
	// TypedCollective and PackedCollective are modeled completion
	// times in seconds for the two strategies.
	TypedCollective, PackedCollective float64

	// PipelinedRing is the modeled completion time of the
	// packed-segment ring schedule (the engine behind the pipelined
	// large-message Bcast/Allgather): each rank packs its contribution
	// once, the ring forwards packed blocks verbatim, and every hop's
	// unpack overlaps the next piece's flight through the chunk-stream.
	// Zero at tree sizes, where the chunk pipeline has nothing to
	// overlap.
	PipelinedRing float64

	// Nodes is the node count the installation's hierarchy implies for
	// this fan (⌈Ranks/NodeSize⌉); 1 on flat machines.
	Nodes int
	// TwoLevelTyped is the modeled completion time of the
	// hierarchy-aware two-level typed fan (the topology behind the
	// two-level Bcast/Allgather schedules): ⌈Ranks/NodeSize⌉
	// concurrent intra-node fans over the cheap intra-node links feed
	// a leader fan that crosses the wire once per node instead of once
	// per rank. Zero on flat machines (NodeSize unset or no intra-node
	// latency discount).
	TwoLevelTyped float64
}

// TypedSpeedup returns PackedCollective/TypedCollective: >1 means the
// typed collective beats packing around the collective.
func (m CollectiveCostModel) TypedSpeedup() float64 {
	if m.TypedCollective <= 0 {
		return 1
	}
	return m.PackedCollective / m.TypedCollective
}

// PriceCollective evaluates the collective cost model for ranks ranks
// exchanging n-byte per-rank payloads of the canonical layout on
// profile p.
func PriceCollective(ranks int, n int64, p *perfmodel.Profile) CollectiveCostModel {
	m := CollectiveCostModel{Ranks: ranks, Bytes: n, Workers: 1}
	if n <= 0 || ranks <= 1 {
		return m
	}
	st := layout.Describe(ForBytes(n).Layout())
	mem := memsim.NewState(&p.Mem)
	mem.SetDisabled(true) // steady-state estimate: cold, deterministic
	wire := p.WireTime(n) + p.NetLatency
	over := p.SendOverhead + p.RecvOverhead
	m.Workers = datatype.ParallelWorkersFor(n)
	// The engine's tree rule: small legs, more than two ranks (a
	// two-rank tree is the linear fan), and every aggregated
	// store-and-forward hop still eager.
	m.Tree = p.UseCollectiveTree(ranks, n)

	selfLeg := mem.FusedCollectiveLegCost(0, 0, st, st, m.Workers)
	if m.Tree {
		// At tree sizes the legs are eager-staged (pack, forward,
		// unpack) — the fused rendezvous needs the handshake — and
		// every hop serialises its memory pass with the wire.
		stagedLeg := mem.StagedCollectiveLegCost(0, 0, st, st)
		m.TypedCollective = memsim.TreeFanCost(ranks, selfLeg, stagedLeg, wire, over)
	} else {
		// Linear fused fan: the remote senders' fused passes run
		// concurrently on their own ranks, and each leg lands in place
		// at the root — no root-side unpack. The root's critical path
		// is its own self leg, one pipeline fill (the first remote
		// leg's sender pass, the same fused cost as the self leg), and
		// the serialised wire.
		m.TypedCollective = memsim.LinearFanCost(ranks, 2*selfLeg, 0, wire, over)
	}

	// Packed-then-collective: the per-rank packs run concurrently too,
	// but the root must unpack every remote slot itself, so the
	// per-leg term is the larger of the wire and the root-side unpack.
	var pack float64
	if m.Workers > 1 {
		pack = mem.ParallelCompiledGatherCost(0, 0, st, m.Workers)
	} else {
		pack = mem.CompiledGatherCost(0, 0, st)
	}
	unpack := mem.CompiledScatterCost(0, 0, st)
	prologue := p.PackCallOverhead + pack + unpack // own pack + self-slot unpack
	if m.Tree {
		m.PackedCollective = prologue + memsim.TreeFanCost(ranks, 0, unpack, wire, over)
	} else {
		m.PackedCollective = prologue + memsim.LinearFanCost(ranks, 0, unpack, wire, over)
	}

	// Two-level hierarchy: with a node granularity and an intra-node
	// latency discount declared, the same fan decomposes into
	// concurrent per-node fans over the cheap links feeding a leader
	// fan whose wire legs number one per node. The intra-node stage
	// pays staged legs (eager store-and-forward at the node boundary);
	// the leader stage keeps the shape the flat engine would pick.
	m.Nodes = 1
	if ns := p.Mem.NodeSize; ns > 1 && p.IntraNodeLatency > 0 && ranks > ns {
		m.Nodes = (ranks + ns - 1) / ns
		intraWire := p.WireTime(n) + p.IntraNodeLatency
		stagedLeg := mem.StagedCollectiveLegCost(0, 0, st, st)
		intra := memsim.LinearFanCost(ns, selfLeg, stagedLeg, intraWire, over)
		if m.Tree {
			m.TwoLevelTyped = intra + memsim.TreeFanCost(m.Nodes, 0, stagedLeg, wire, over)
		} else {
			m.TwoLevelTyped = intra + memsim.LinearFanCost(m.Nodes, 0, 0, wire, over)
		}
	}

	// Pipelined packed-segment ring: one serial compiled pack of the
	// contribution, then p-1 hops whose per-hop span is the chunked
	// pipeline of the block's wire against its unpack (the forwarded
	// stream is read back out at streaming rate, which the duplex hop
	// hides under the receive).
	if !m.Tree {
		serialPack := mem.CompiledGatherCost(0, 0, st)
		hop := memsim.PipelinedChunkCost(wire, unpack, p.Chunks(n), p.PipelineDepth())
		m.PipelinedRing = serialPack + float64(ranks-1)*(over+hop)
	}
	return m
}

// TwoLevelSpeedup returns TypedCollective/TwoLevelTyped: >1 means the
// hierarchy-aware two-level topology beats the flat fan. It is 1 on
// flat machines, where the two-level schedule does not apply.
func (m CollectiveCostModel) TwoLevelSpeedup() float64 {
	if m.TwoLevelTyped <= 0 || m.TypedCollective <= 0 {
		return 1
	}
	return m.TypedCollective / m.TwoLevelTyped
}

// PipelinedSpeedup returns TypedCollective/PipelinedRing: >1 means the
// packed-segment ring beats the typed fan. It is 1 when the ring does
// not apply (tree sizes).
func (m CollectiveCostModel) PipelinedSpeedup() float64 {
	if m.PipelinedRing <= 0 || m.TypedCollective <= 0 {
		return 1
	}
	return m.TypedCollective / m.PipelinedRing
}

// RecommendCollective operationalises the paper's conclusion for
// collectives over non-contiguous rank layouts: contiguous slots need
// nothing beyond the classic byte collective; non-contiguous layouts
// should ride the typed collectives (the most user-friendly choice,
// and past the eager limit the fused engine makes them the fastest),
// unless the cost model prices the explicit pack-then-collective
// pipeline below them.
func RecommendCollective(ranks int, n int64, contiguous bool, goal Goal, p *perfmodel.Profile) Recommendation {
	if contiguous {
		return Recommendation{
			Scheme: Reference,
			Reason: "slots are contiguous; the classic byte collective already rides the dense fast path",
		}
	}
	m := PriceCollective(ranks, n, p)
	if goal == GoalFastest {
		if m.PipelinedRing > 0 && m.PipelinedRing < m.TypedCollective && m.PipelinedRing <= m.PackedCollective {
			return Recommendation{
				Scheme: TypedPipelined,
				Reason: fmt.Sprintf("pipelined packed-segment ring models %.2fx over the typed fan on %s: pack once, forward packed blocks, unpack overlapped against the next piece's flight",
					m.PipelinedSpeedup(), p.Name),
			}
		}
		if m.TypedCollective <= m.PackedCollective {
			return Recommendation{
				Scheme: Sendv,
				Reason: fmt.Sprintf("typed collective models %.2fx over pack-then-collective on %s: fused legs, fused self-leg, no staging",
					m.TypedSpeedup(), p.Name),
			}
		}
		return Recommendation{
			Scheme: PackCompiled,
			Reason: fmt.Sprintf("compiled pack around the contiguous collective models %.2fx over the typed legs on %s",
				1/m.TypedSpeedup(), p.Name),
		}
	}
	if n > LargeMessageBytes && m.PackedCollective < m.TypedCollective {
		return Recommendation{
			Scheme: PackCompiled,
			Reason: fmt.Sprintf("per-rank payload %d B exceeds the %d B large-message threshold and the model favours packing around the collective on %s",
				n, LargeMessageBytes, p.Name),
		}
	}
	return Recommendation{
		Scheme: Sendv,
		Reason: "typed collectives are the most user-friendly and the fused engine keeps every leg single-pass (§5, extended)",
	}
}
