package core

import (
	"runtime"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/datatype"
	"repro/internal/layout"
	"repro/internal/perfmodel"
)

func TestSchemeNames(t *testing.T) {
	want := []string{"reference", "copying", "buffered", "vector type", "subarray", "onesided", "packing(e)", "packing(v)", "packing(c)", "sendv", "pipelined"}
	for i, s := range Schemes() {
		if s.String() != want[i] {
			t.Errorf("scheme %d = %q, want %q", i, s, want[i])
		}
	}
	if Scheme(99).String() == "" {
		t.Error("unknown scheme renders empty")
	}
}

func TestSchemeByName(t *testing.T) {
	for _, s := range Schemes() {
		got, err := SchemeByName(s.String())
		if err != nil || got != s {
			t.Errorf("round trip %v: got %v, %v", s, got, err)
		}
	}
	if _, err := SchemeByName("warp drive"); err == nil {
		t.Error("unknown name accepted")
	}
	if s, err := SchemeByName("bsend"); err != nil || s != Buffered {
		t.Errorf("alias bsend: %v, %v", s, err)
	}
}

func TestNonContiguous(t *testing.T) {
	if Reference.NonContiguous() {
		t.Error("reference marked non-contiguous")
	}
	if !PackVector.NonContiguous() {
		t.Error("packing(v) marked contiguous")
	}
}

func TestWorkloadGeometry(t *testing.T) {
	w := ForBytes(1 << 20)
	if w.BlockLen != 1 || w.Stride != 2 {
		t.Fatalf("canonical workload = %+v", w)
	}
	if w.Bytes() != 1<<20 {
		t.Fatalf("bytes = %d", w.Bytes())
	}
	if w.SrcBytes() != 2<<20 {
		t.Fatalf("src bytes = %d", w.SrcBytes())
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadValidate(t *testing.T) {
	bad := []Workload{
		{Count: -1, BlockLen: 1, Stride: 2},
		{Count: 1, BlockLen: 0, Stride: 2},
		{Count: 1, BlockLen: 4, Stride: 2},
		{Count: 1, BlockLen: 1, Stride: 2, Jitter: 1.5},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("bad workload %d validated: %+v", i, w)
		}
	}
}

func TestWorkloadTypesAgreeWithLayout(t *testing.T) {
	w := Workload{Count: 50, BlockLen: 3, Stride: 7}
	vt, err := w.VectorType()
	if err != nil {
		t.Fatal(err)
	}
	st, err := w.SubarrayType()
	if err != nil {
		t.Fatal(err)
	}
	if vt.Size() != w.Bytes() || st.Size() != w.Bytes() {
		t.Fatalf("type sizes %d/%d, want %d", vt.Size(), st.Size(), w.Bytes())
	}
	// Both types must select exactly the workload's layout bytes.
	want := layout.Segments(w.Layout())
	for name, ty := range map[string]interface {
		ForEach(func(layout.Segment) bool)
	}{"vector": vt.Layout(1), "subarray": st.Layout(1)} {
		var got []layout.Segment
		ty.ForEach(func(s layout.Segment) bool { got = append(got, s); return true })
		if len(got) != len(want) {
			t.Fatalf("%s: %d segments, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s segment %d = %+v, want %+v", name, i, got[i], want[i])
			}
		}
	}
}

func TestJitteredWorkloadType(t *testing.T) {
	w := Workload{Count: 100, BlockLen: 1, Stride: 8, Jitter: 0.8}
	ty, err := w.VectorType()
	if err != nil {
		t.Fatal(err)
	}
	if ty.Size() != w.Bytes() {
		t.Fatalf("jittered type size %d, want %d", ty.Size(), w.Bytes())
	}
	if _, err := w.SubarrayType(); err == nil {
		t.Fatal("subarray accepted a jittered workload")
	}
	if w.SrcBytes() < w.Layout().Extent() {
		t.Fatal("source allocation smaller than jittered extent")
	}
}

// Property: payload size is invariant under jitter.
func TestQuickJitterPreservesPayload(t *testing.T) {
	f := func(cnt uint8, j float64) bool {
		if j < 0 {
			j = -j
		}
		for j > 1 {
			j /= 2
		}
		w := Workload{Count: int(cnt)%100 + 1, BlockLen: 1, Stride: 8, Jitter: j}
		return w.Layout().Size() == w.Bytes()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewRunnerAllSchemes(t *testing.T) {
	for _, s := range Schemes() {
		r, err := NewRunner(s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if r.Scheme() != s {
			t.Fatalf("runner for %v reports %v", s, r.Scheme())
		}
	}
	if _, err := NewRunner(Scheme(42)); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestRecommendConclusion(t *testing.T) {
	prof := perfmodel.Generic()
	small := Recommend(1<<20, false, GoalBalanced, prof)
	if small.Scheme != VectorType {
		t.Errorf("balanced small: %v", small.Scheme)
	}
	large := Recommend(5e8, false, GoalBalanced, prof)
	if large.Scheme != PackCompiled {
		t.Errorf("balanced large: %v", large.Scheme)
	}
	// Past the eager limit the fused rendezvous removes the staging
	// pass the pack pipelines still pay, so GoalFastest picks sendv.
	fast := Recommend(1<<20, false, GoalFastest, prof)
	if fast.Scheme != Sendv {
		t.Errorf("fastest: %v", fast.Scheme)
	}
	// Under the eager limit sendv falls back to the staged path, so
	// the recommendation must not name it.
	fastSmall := Recommend(16<<10, false, GoalFastest, prof)
	if fastSmall.Scheme == Sendv {
		t.Errorf("fastest under the eager limit recommended sendv")
	}
	// The fused recommendation must rest on an actual price.
	if m := PricePacking(1<<20, prof); m.FusedSend <= 0 || m.FusedSpeedup() <= 1 || m.FusedSend >= m.CompiledPack {
		t.Errorf("cost model does not favour the fused rendezvous at 1 MiB: %+v", m)
	}
	if m := PricePacking(16<<10, prof); m.FusedSend != 0 {
		t.Errorf("eager-sized payload priced a fused send: %+v", m)
	}
	// The compiled recommendation must rest on an actual price: the
	// model has to show packing(c) beating the datatype send.
	if m := PricePacking(5e8, prof); m.CompiledSpeedup() <= 1 {
		t.Errorf("cost model does not favour compiled packing at 5e8 B: %+v", m)
	}
	if m := PricePacking(64<<20, prof); runtime.GOMAXPROCS(0) > 1 && m.Workers <= 1 {
		t.Errorf("no parallel-pack term above the threshold: %+v", m)
	}
	contig := Recommend(1<<20, true, GoalBalanced, prof)
	if contig.Scheme != Reference {
		t.Errorf("contiguous: %v", contig.Scheme)
	}
	for _, r := range []Recommendation{small, large, fast, contig} {
		if strings.TrimSpace(r.Reason) == "" {
			t.Error("recommendation without a reason")
		}
	}
}

// TestPricePipelined pins the pipelined column of the packing cost
// model: priced only where the engine can overlap (rendezvous,
// multi-chunk), always between the fused bound and the serial typed
// send, and degenerating to zero at eager sizes.
func TestPricePipelined(t *testing.T) {
	prof := perfmodel.Generic()
	m := PricePacking(4<<20, prof)
	if m.PipelinedSend <= 0 {
		t.Fatalf("4 MiB payload priced no pipelined send: %+v", m)
	}
	if m.Chunks <= 1 || m.Depth < 1 {
		t.Fatalf("pipelined model carries no chunk geometry: %+v", m)
	}
	if m.PipelinedSend >= m.TypedSend {
		t.Errorf("pipelined (%.3g) not below the serial typed send (%.3g)", m.PipelinedSend, m.TypedSend)
	}
	if m.PipelinedSpeedup() < 1.3 {
		t.Errorf("pipelined speedup %.2fx at 4 MiB, want >= 1.3x (the acceptance floor)", m.PipelinedSpeedup())
	}
	if m.FusedSend > 0 && m.PipelinedSend < m.FusedSend {
		t.Errorf("pipelined (%.3g) prices below the fused bound (%.3g)", m.PipelinedSend, m.FusedSend)
	}
	if e := PricePacking(16<<10, prof); e.PipelinedSend != 0 {
		t.Errorf("eager-sized payload priced a pipelined send: %+v", e)
	}
	// GoalFastest prefers fused when it is cheapest, and must fall to
	// the pipelined scheme when the fused path is priced out.
	if rec := Recommend(4<<20, false, GoalFastest, prof); rec.Scheme != Sendv {
		t.Errorf("fastest at 4 MiB: %v (fused should win outright)", rec.Scheme)
	}
	sp := m.TypedSend / m.PipelinedSend
	if sp <= 1 {
		t.Fatalf("no pipelined headroom to recommend: %+v", m)
	}
}

// TestRecommendCollectivePipelined pins the collective model's
// pipelined-ring column: present for large linear-fan legs, absent at
// tree sizes.
func TestRecommendCollectivePipelined(t *testing.T) {
	p := perfmodel.Generic()
	big := PriceCollective(8, 10_000_000, p)
	if big.PipelinedRing <= 0 {
		t.Fatalf("10 MB legs priced no pipelined ring: %+v", big)
	}
	small := PriceCollective(8, 1024, p)
	if small.PipelinedRing != 0 {
		t.Errorf("tree-sized legs priced a pipelined ring: %+v", small)
	}
	// Whatever wins, the recommendation must be one of the three
	// engines the model prices, with a reason.
	rec := RecommendCollective(8, 10_000_000, false, GoalFastest, p)
	switch rec.Scheme {
	case Sendv, PackCompiled, TypedPipelined:
	default:
		t.Errorf("fastest collective recommended %v", rec.Scheme)
	}
	if strings.TrimSpace(rec.Reason) == "" {
		t.Error("recommendation without a reason")
	}
}

func TestPriceCollective(t *testing.T) {
	p, err := perfmodel.ByName("skx-impi")
	if err != nil {
		t.Fatal(err)
	}
	// Rendezvous-sized legs: linear fan, fused legs beat the
	// pack-then-collective pipeline.
	big := PriceCollective(8, 10_000_000, p)
	if big.Tree {
		t.Errorf("10 MB legs priced as tree fan")
	}
	if big.TypedCollective <= 0 || big.PackedCollective <= 0 {
		t.Fatalf("non-positive collective costs: %+v", big)
	}
	if big.TypedSpeedup() <= 1 {
		t.Errorf("typed collective models %.2fx vs packed at 10 MB, want >1", big.TypedSpeedup())
	}
	// Latency-sized legs: tree fan.
	small := PriceCollective(8, 1024, p)
	if !small.Tree {
		t.Errorf("1 KB legs priced as linear fan")
	}
	// Degenerate shapes.
	if m := PriceCollective(1, 1<<20, p); m.TypedCollective != 0 {
		t.Errorf("single-rank collective has nonzero cost %+v", m)
	}
}

func TestRecommendCollective(t *testing.T) {
	p, err := perfmodel.ByName("skx-impi")
	if err != nil {
		t.Fatal(err)
	}
	if rec := RecommendCollective(8, 1<<20, true, GoalFastest, p); rec.Scheme != Reference {
		t.Errorf("contiguous slots recommended %v", rec.Scheme)
	}
	rec := RecommendCollective(8, 10_000_000, false, GoalFastest, p)
	if rec.Scheme != Sendv && rec.Scheme != PackCompiled {
		t.Errorf("fastest collective recommended %v", rec.Scheme)
	}
	m := PriceCollective(8, 10_000_000, p)
	if m.TypedSpeedup() > 1 && rec.Scheme != Sendv {
		t.Errorf("model favours typed (%.2fx) but recommendation is %v", m.TypedSpeedup(), rec.Scheme)
	}
	if rec := RecommendCollective(8, 1<<16, false, GoalBalanced, p); rec.Scheme != Sendv {
		t.Errorf("balanced mid-size collective recommended %v, want the typed collectives", rec.Scheme)
	}
}

// TestPricePackingForType: a nested hvector-of-vector whose program
// canonicalises at Commit prices with the normalized kernel terms, and
// never above the same layout priced raw.
func TestPricePackingForType(t *testing.T) {
	prof := perfmodel.Generic()
	in, err := datatype.Vector(64, 1, 2, datatype.Float64)
	if err != nil {
		t.Fatal(err)
	}
	ty, err := datatype.Hvector(256, 1, in.TrueExtent()+16, in)
	if err != nil {
		t.Fatal(err)
	}
	if err := ty.Commit(); err != nil {
		t.Fatal(err)
	}
	m, err := PricePackingForType(ty, 1, prof)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Normalized {
		t.Fatalf("hvector-of-vector priced raw: %+v", m)
	}
	if m.Bytes != ty.PackSize(1) {
		t.Fatalf("Bytes = %d, want %d", m.Bytes, ty.PackSize(1))
	}
	// The normalized term only amortises bookkeeping, so it must price
	// at or under the raw compiled ladder on the identical stats.
	raw := priceModel(m.Bytes, ty.Stats(1), false, prof)
	if m.CompiledPack > raw.CompiledPack {
		t.Fatalf("normalized compiled pack %g prices above raw %g", m.CompiledPack, raw.CompiledPack)
	}
	if raw.Normalized {
		t.Fatal("raw ladder claims normalized pricing")
	}

	// An irregular indexed layout keeps the raw ladder.
	ib, err := datatype.IndexedBlock(1, []int{0, 3, 7, 12, 14, 21}, datatype.Float64)
	if err != nil {
		t.Fatal(err)
	}
	if err := ib.Commit(); err != nil {
		t.Fatal(err)
	}
	im, err := PricePackingForType(ib, 1, prof)
	if err != nil {
		t.Fatal(err)
	}
	if im.Normalized {
		t.Fatalf("irregular indexed layout priced normalized: %+v", im)
	}
}

// TestRecommendForType: dense types get the reference scheme; a
// non-contiguous derived type walks the same ladder as Recommend.
func TestRecommendForType(t *testing.T) {
	prof := perfmodel.Generic()
	dense, err := datatype.Contiguous(1024, datatype.Float64)
	if err != nil {
		t.Fatal(err)
	}
	if err := dense.Commit(); err != nil {
		t.Fatal(err)
	}
	r, err := RecommendForType(dense, 1, GoalFastest, prof)
	if err != nil {
		t.Fatal(err)
	}
	if r.Scheme != Reference {
		t.Fatalf("dense type recommended %v, want Reference", r.Scheme)
	}
	vec, err := datatype.Vector(1<<17, 1, 2, datatype.Float64)
	if err != nil {
		t.Fatal(err)
	}
	if err := vec.Commit(); err != nil {
		t.Fatal(err)
	}
	rv, err := RecommendForType(vec, 1, GoalFastest, prof)
	if err != nil {
		t.Fatal(err)
	}
	if rv.Scheme == Reference {
		t.Fatal("strided vector recommended the reference scheme")
	}
}

// TestPriceCollectiveTwoLevel pins the hierarchy column: zero on flat
// machines, positive and faster than the flat fan on a hierarchical
// installation with a strong intra-node latency discount at
// latency-bound sizes.
func TestPriceCollectiveTwoLevel(t *testing.T) {
	flat := PriceCollective(64, 1024, perfmodel.Generic())
	if flat.TwoLevelTyped != 0 || flat.Nodes != 1 || flat.TwoLevelSpeedup() != 1 {
		t.Fatalf("flat machine priced a two-level fan: %+v", flat)
	}
	p := perfmodel.Generic()
	p.Mem.NodeSize = 8
	p.IntraNodeLatency = p.NetLatency / 10
	hier := PriceCollective(64, 1024, p)
	if hier.Nodes != 8 {
		t.Fatalf("64 ranks at 8 per node priced %d nodes", hier.Nodes)
	}
	if hier.TwoLevelTyped <= 0 {
		t.Fatalf("hierarchical machine priced no two-level fan: %+v", hier)
	}
	if hier.TwoLevelSpeedup() <= 1 {
		t.Errorf("two-level fan models %.2fx vs flat at 64 ranks, want >1", hier.TwoLevelSpeedup())
	}
	// Communicator inside one node: the hierarchy buys nothing.
	if m := PriceCollective(8, 1024, p); m.TwoLevelTyped != 0 {
		t.Errorf("intra-node fan priced a two-level schedule: %+v", m)
	}
}
