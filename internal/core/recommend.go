package core

import (
	"fmt"

	"repro/internal/datatype"
	"repro/internal/layout"
	"repro/internal/memsim"
	"repro/internal/perfmodel"
)

// Goal selects what the recommendation optimises for.
type Goal int

// Recommendation goals.
const (
	// GoalBalanced follows the paper's conclusion literally: derived
	// datatypes are the most user-friendly and cost nothing extra up
	// to large sizes; beyond that, pack the datatype explicitly.
	GoalBalanced Goal = iota
	// GoalFastest always picks the consistently fastest scheme.
	GoalFastest
)

// Recommendation is the advice for one transfer.
type Recommendation struct {
	Scheme Scheme
	Reason string
}

// LargeMessageBytes is the paper's threshold for "large" messages,
// where MPI's internal buffering starts to hurt direct derived-type
// sends: "over 10⁸ bytes" (§5).
const LargeMessageBytes = int64(1e8)

// PackingCostModel prices the two explicit-pack pipelines and the
// direct datatype send for an n-byte payload of the canonical
// every-other-double layout on one installation, using the memory
// model cold (no warmth): per-message software cost plus wire time.
// It is how Recommend weighs packing(c) — the compiled pack engine,
// parallel above the threshold — against the interpreted alternatives.
type PackingCostModel struct {
	Bytes int64
	// Workers is the parallel fan-out the compiled pack engine would
	// use for this size (1 = serial).
	Workers int
	// CompiledPack, InterpretedPack and TypedSend are modeled one-way
	// transfer times in seconds for packing(c), packing(v), and the
	// direct derived-datatype send.
	CompiledPack, InterpretedPack, TypedSend float64

	// FusedSend is the modeled one-way time of the fused zero-copy
	// rendezvous (sendv): one memory pass overlapped with the wire at
	// nominal bandwidth, no staging, no internal chunking. Zero when
	// the payload would ride the eager protocol, where sendv falls
	// back to the staged typed path and buys nothing.
	FusedSend float64

	// PipelinedSend is the modeled one-way time of the
	// software-pipelined typed send (SendpType): the compiled pack
	// overlapped chunk-by-chunk against injection through the slot
	// ring, still staged through MPI-internal chunks at the internally
	// degraded bandwidth. Zero when the payload would ride the eager
	// protocol or fit one chunk, where the engine degenerates to the
	// serial typed path.
	PipelinedSend float64
	// Chunks and Depth are the internal-chunk count and slot-ring
	// depth behind PipelinedSend.
	Chunks int64
	Depth  int

	// Normalized reports that the pack terms were priced with the
	// canonicalised block kernel's further-amortised bookkeeping
	// (memsim.NormalizedGatherCost): the type's compiled program
	// collapsed to a strided-block form at Commit.
	Normalized bool
}

// CompiledSpeedup returns TypedSend/CompiledPack: >1 means the
// compiled pack pipeline beats the direct datatype send.
func (m PackingCostModel) CompiledSpeedup() float64 {
	if m.CompiledPack <= 0 {
		return 1
	}
	return m.TypedSend / m.CompiledPack
}

// FusedSpeedup returns TypedSend/FusedSend: >1 means the fused
// rendezvous beats the direct datatype send. It is 1 when sendv would
// fall back to the staged path (eager-sized payloads).
func (m PackingCostModel) FusedSpeedup() float64 {
	if m.FusedSend <= 0 {
		return 1
	}
	return m.TypedSend / m.FusedSend
}

// PipelinedSpeedup returns TypedSend/PipelinedSend: >1 means the
// software-pipelined chunk loop beats the serial one. It is 1 when
// the engine would degenerate to the serial path.
func (m PackingCostModel) PipelinedSpeedup() float64 {
	if m.PipelinedSend <= 0 {
		return 1
	}
	return m.TypedSend / m.PipelinedSend
}

// PricePacking evaluates the packing cost model for n payload bytes of
// the canonical every-other-double layout on profile p.
func PricePacking(n int64, p *perfmodel.Profile) PackingCostModel {
	if n <= 0 {
		return PackingCostModel{Bytes: n, Workers: 1}
	}
	return priceModel(n, layout.Describe(ForBytes(n).Layout()), false, p)
}

// PricePackingForType evaluates the packing cost model for count
// instances of a committed derived type on profile p. Unlike
// PricePacking it prices the type's own layout statistics, and when the
// type's compiled program was canonicalised into a strided-block form
// at Commit (datatype.KernelBlock), the compiled-pack terms use the
// normalized kernel's further-amortised per-segment cost — the
// TEMPI-direction term that makes nested vector tilings price like the
// regular layouts they really are.
func PricePackingForType(ty *datatype.Type, count int, p *perfmodel.Profile) (PackingCostModel, error) {
	plan, err := ty.CompilePlan(count)
	if err != nil {
		return PackingCostModel{}, err
	}
	n := ty.PackSize(count)
	if n <= 0 {
		return PackingCostModel{Bytes: n, Workers: 1}, nil
	}
	return priceModel(n, ty.Stats(count), plan.Kernel() == datatype.KernelBlock, p), nil
}

// priceModel is the shared pricing ladder behind PricePacking and
// PricePackingForType.
func priceModel(n int64, st layout.Stats, normalized bool, p *perfmodel.Profile) PackingCostModel {
	m := PackingCostModel{Bytes: n, Workers: 1, Normalized: normalized}
	mem := memsim.NewState(&p.Mem)
	mem.SetDisabled(true) // steady-state estimate: cold, deterministic
	wire := p.WireTime(n)

	m.Workers = datatype.ParallelWorkersFor(n)
	compiledGather := func(workers int) float64 {
		switch {
		case normalized && workers > 1:
			return mem.ParallelNormalizedGatherCost(0, 0, st, workers)
		case normalized:
			return mem.NormalizedGatherCost(0, 0, st)
		case workers > 1:
			return mem.ParallelCompiledGatherCost(0, 0, st, workers)
		}
		return mem.CompiledGatherCost(0, 0, st)
	}
	m.CompiledPack = p.PackCallOverhead + compiledGather(m.Workers) + wire

	m.InterpretedPack = p.PackCallOverhead + mem.GatherCost(0, 0, st) + wire

	// The direct datatype send interprets the type through MPI's
	// internal chunk buffers at the internally degraded bandwidth
	// (§2.3, §4.1), with per-chunk bookkeeping.
	typedWire := 0.0
	if bw := p.InternalBW(n); bw > 0 {
		typedWire = float64(n) / bw
	}
	m.Chunks = p.Chunks(n)
	m.Depth = p.PipelineDepth()
	m.TypedSend = mem.GatherCost(0, 0, st) + float64(m.Chunks)*p.ChunkOverhead + typedWire

	// The pipelined typed send runs the same chunked staging, but the
	// compiled pack of chunk k+1 overlaps the injection of chunk k
	// through the slot ring, so the span collapses to the two-stage
	// pipeline bound. Rendezvous only: the eager path packs in one
	// shot before the envelope leaves.
	if !p.Eager(n, false) && m.Chunks > 1 {
		pipePack := compiledGather(1) + float64(m.Chunks)*p.ChunkOverhead
		m.PipelinedSend = memsim.PipelinedChunkCost(pipePack, typedWire, m.Chunks, m.Depth)
	}

	// The fused rendezvous runs one compiled pass straight into the
	// receiver's buffer, pipelined with the wire at nominal bandwidth:
	// no staging traffic, no chunk bookkeeping, no internal-pool
	// degradation. Only available past the eager limit, where the
	// handshake exposes the destination.
	if !p.Eager(n, false) {
		contigSt := layout.Stats{Segments: 1, Bytes: n, Extent: n, AvgBlock: float64(n), MinBlock: n, MaxBlock: n, Density: 1}
		fusedPass := mem.FusedCopyCost(0, 0, st, contigSt)
		m.FusedSend = fusedPass
		if wire > m.FusedSend {
			m.FusedSend = wire
		}
	}
	return m
}

// Recommend operationalises the paper's conclusion (§5), extended with
// the compiled pack engine, for a payload of n bytes on the given
// installation:
//
//   - Contiguous data: just send it (reference).
//   - Up to large sizes, "there should be no reason not to use derived
//     datatypes, these being the most user-friendly".
//   - "The scheme that consistently performs best applies MPI_Pack to
//     a derived datatype" — and the compiled plan engine executes that
//     same single pack call with amortised per-segment bookkeeping
//     (parallel above the threshold), so when the cost model prices
//     packing(c) below the datatype send, it is the fastest choice and
//     the balanced choice for large messages.
//   - Past the eager limit the fused rendezvous (sendv) removes even
//     the pack pipeline's staging pass: one compiled sweep straight
//     into the receiver's buffer, overlapped with the wire. When the
//     model prices it below both the compiled pack and the datatype
//     send, GoalFastest picks it.
//   - When the receive path cannot take the fused scatter, the
//     software-pipelined typed send (SendpType) is the next rung: the
//     same chunked staging as the serial datatype send, with pack
//     overlapped against inject through the slot ring. GoalFastest
//     picks it whenever the model prices it below the compiled pack
//     and fused is not cheaper still.
//   - Buffered sends are "at a disadvantage" and one-sided "may behave
//     worse depending on the architecture"; they are never
//     recommended.
func Recommend(n int64, contiguous bool, goal Goal, p *perfmodel.Profile) Recommendation {
	if contiguous {
		return Recommendation{
			Scheme: Reference,
			Reason: "payload is contiguous; a plain send attains the hardware rate",
		}
	}
	return decide(func() PackingCostModel { return PricePacking(n, p) }, n, goal, p)
}

// RecommendForType is Recommend for a committed derived type: the cost
// model prices the type's own layout, with the normalized-kernel terms
// when its program canonicalised at Commit (see PricePackingForType).
func RecommendForType(ty *datatype.Type, count int, goal Goal, p *perfmodel.Profile) (Recommendation, error) {
	if ty.IsContiguous() {
		return Recommendation{
			Scheme: Reference,
			Reason: "the datatype is dense; a plain send attains the hardware rate",
		}, nil
	}
	model, err := PricePackingForType(ty, count, p)
	if err != nil {
		return Recommendation{}, err
	}
	return decide(func() PackingCostModel { return model }, ty.PackSize(count), goal, p), nil
}

// decide maps a priced model onto the recommendation ladder. The model
// is taken lazily: the balanced goal only consults it past the
// large-message threshold.
func decide(price func() PackingCostModel, n int64, goal Goal, p *perfmodel.Profile) Recommendation {
	if goal == GoalFastest {
		model := price()
		if model.FusedSend > 0 && model.FusedSend < model.CompiledPack && model.FusedSpeedup() > 1 &&
			(model.PipelinedSend <= 0 || model.FusedSend <= model.PipelinedSend) {
			return Recommendation{
				Scheme: Sendv,
				Reason: fmt.Sprintf("fused rendezvous models %.2fx over the datatype send on %s: one pass, no staging buffer, no MPI-internal chunking",
					model.FusedSpeedup(), p.Name),
			}
		}
		if model.PipelinedSend > 0 && model.PipelinedSend < model.CompiledPack && model.PipelinedSpeedup() > 1 {
			return Recommendation{
				Scheme: TypedPipelined,
				Reason: fmt.Sprintf("pipelined chunk engine models %.2fx over the serial datatype send on %s: %d chunks overlapped through a depth-%d slot ring (§2.3)",
					model.PipelinedSpeedup(), p.Name, model.Chunks, model.Depth),
			}
		}
		if model.CompiledSpeedup() > 1 {
			return Recommendation{
				Scheme: PackCompiled,
				Reason: fmt.Sprintf("compiled pack (%d worker(s)) models %.2fx over the datatype send on %s and avoids MPI-internal buffering (§5)",
					model.Workers, model.CompiledSpeedup(), p.Name),
			}
		}
		return Recommendation{
			Scheme: PackVector,
			Reason: "MPI_Pack of a derived datatype consistently matches the manual copy and avoids MPI-internal buffering (§5)",
		}
	}
	if n > LargeMessageBytes {
		model := price()
		if model.CompiledSpeedup() > 1 {
			return Recommendation{
				Scheme: PackCompiled,
				Reason: fmt.Sprintf("payload %d B exceeds the %d B large-message threshold and the compiled pack engine models %.2fx over the degrading datatype send on %s (§4.1, §5)",
					n, LargeMessageBytes, model.CompiledSpeedup(), p.Name),
			}
		}
		return Recommendation{
			Scheme: PackVector,
			Reason: fmt.Sprintf("payload %d B exceeds the %d B large-message threshold where direct derived-type sends degrade on %s (§4.1, §5)",
				n, LargeMessageBytes, p.Name),
		}
	}
	return Recommendation{
		Scheme: VectorType,
		Reason: "below the large-message range all schemes perform similarly, so the most user-friendly derived datatype wins (§5)",
	}
}
