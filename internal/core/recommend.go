package core

import (
	"fmt"

	"repro/internal/perfmodel"
)

// Goal selects what the recommendation optimises for.
type Goal int

// Recommendation goals.
const (
	// GoalBalanced follows the paper's conclusion literally: derived
	// datatypes are the most user-friendly and cost nothing extra up
	// to large sizes; beyond that, pack the datatype explicitly.
	GoalBalanced Goal = iota
	// GoalFastest always picks the consistently fastest scheme.
	GoalFastest
)

// Recommendation is the advice for one transfer.
type Recommendation struct {
	Scheme Scheme
	Reason string
}

// LargeMessageBytes is the paper's threshold for "large" messages,
// where MPI's internal buffering starts to hurt direct derived-type
// sends: "over 10⁸ bytes" (§5).
const LargeMessageBytes = int64(1e8)

// Recommend operationalises the paper's conclusion (§5) for a payload
// of n bytes on the given installation:
//
//   - Contiguous data: just send it (reference).
//   - Up to large sizes, "there should be no reason not to use derived
//     datatypes, these being the most user-friendly".
//   - "The scheme that consistently performs best applies MPI_Pack to
//     a derived datatype" — so that is the fastest choice everywhere,
//     and the balanced choice for large messages.
//   - Buffered sends are "at a disadvantage" and one-sided "may behave
//     worse depending on the architecture"; they are never
//     recommended.
func Recommend(n int64, contiguous bool, goal Goal, p *perfmodel.Profile) Recommendation {
	if contiguous {
		return Recommendation{
			Scheme: Reference,
			Reason: "payload is contiguous; a plain send attains the hardware rate",
		}
	}
	if goal == GoalFastest {
		return Recommendation{
			Scheme: PackVector,
			Reason: "MPI_Pack of a derived datatype consistently matches the manual copy and avoids MPI-internal buffering (§5)",
		}
	}
	if n > LargeMessageBytes {
		return Recommendation{
			Scheme: PackVector,
			Reason: fmt.Sprintf("payload %d B exceeds the %d B large-message threshold where direct derived-type sends degrade on %s (§4.1, §5)",
				n, LargeMessageBytes, p.Name),
		}
	}
	return Recommendation{
		Scheme: VectorType,
		Reason: "below the large-message range all schemes perform similarly, so the most user-friendly derived datatype wins (§5)",
	}
}
