package core

import (
	"testing"

	"repro/internal/memsim"
	"repro/internal/perfmodel"
)

// feed trains a path with a synthetic latency+bandwidth line sampled
// at several sizes.
func feed(o *memsim.ObservedHierarchy, path string, alpha, invBW float64) {
	for _, n := range []int64{1 << 10, 64 << 10, 1 << 20, 16 << 20} {
		o.Observe(path, n, alpha+invBW*float64(n))
	}
}

// TestRecommendTunedFallsBack pins the degradation ladder: nil
// hierarchy and under-sampled hierarchy both reproduce the calibrated
// Recommend exactly.
func TestRecommendTunedFallsBack(t *testing.T) {
	p := perfmodel.Generic()
	for _, n := range []int64{1 << 10, 1 << 20, 1 << 27} {
		for _, goal := range []Goal{GoalBalanced, GoalFastest} {
			want := Recommend(n, false, goal, p)
			if got := RecommendTuned(n, false, goal, p, nil); got.Scheme != want.Scheme {
				t.Errorf("nil hierarchy: n=%d goal=%v got %s want %s", n, goal, got.Scheme, want.Scheme)
			}
			sparse := memsim.NewObservedHierarchy(nil)
			sparse.Observe(memsim.PathTypedSend, 1<<20, 1e-4) // below MinObservations
			if got := RecommendTuned(n, false, goal, p, sparse); got.Scheme != want.Scheme {
				t.Errorf("sparse hierarchy: n=%d goal=%v got %s want %s", n, goal, got.Scheme, want.Scheme)
			}
		}
	}
	// Contiguous payloads stay on the reference path regardless.
	o := memsim.NewObservedHierarchy(nil)
	feed(o, memsim.PathTypedSend, 1e-6, 1e-9)
	if got := RecommendTuned(1<<20, true, GoalFastest, p, o); got.Scheme != Reference {
		t.Errorf("contiguous payload recommended %s", got.Scheme)
	}
}

// TestRecommendTunedPrefersObservedWinner pins the self-tuning
// property: when the observed fits say the typed send loses badly, the
// recommendation abandons it; when they say it wins, GoalBalanced
// keeps the user-friendly derived datatype.
func TestRecommendTunedPrefersObservedWinner(t *testing.T) {
	p := perfmodel.Generic()
	const n = 1 << 20

	// Typed observed 100x slower than packed: must not pick VectorType.
	slow := memsim.NewObservedHierarchy(nil)
	feed(slow, memsim.PathTypedSend, 1e-3, 1e-7)
	feed(slow, memsim.PathPackedSend, 1e-6, 1e-9)
	got := RecommendTuned(n, false, GoalFastest, p, slow)
	if got.Scheme == VectorType {
		t.Errorf("typed observed 100x slower but still recommended: %+v", got)
	}
	m := PricePackingTuned(n, p, slow)
	cost := map[Scheme]float64{VectorType: m.TypedSend, PackCompiled: m.CompiledPack}
	if m.FusedSend > 0 {
		cost[Sendv] = m.FusedSend
	}
	if m.PipelinedSend > 0 {
		cost[TypedPipelined] = m.PipelinedSend
	}
	chosen, ok := cost[got.Scheme]
	if !ok {
		t.Fatalf("recommended scheme %s is not a priced candidate", got.Scheme)
	}
	for s, c := range cost {
		if c < chosen {
			t.Errorf("recommended %s (%.3g s) loses to %s (%.3g s)", got.Scheme, chosen, s, c)
		}
	}

	// Typed observed near-free: balanced keeps the derived datatype.
	fast := memsim.NewObservedHierarchy(nil)
	feed(fast, memsim.PathTypedSend, 1e-9, 1e-12)
	if got := RecommendTuned(n, false, GoalBalanced, p, fast); got.Scheme != VectorType {
		t.Errorf("typed observed near-free under GoalBalanced: got %s, want %s", got.Scheme, VectorType)
	}
}

// TestPricePackingTunedOverrides pins which terms the observed fits
// replace: typed-send and packed-send move to the fitted lines, the
// rest keep the calibrated model.
func TestPricePackingTunedOverrides(t *testing.T) {
	p := perfmodel.Generic()
	const n = 1 << 20
	base := PricePacking(n, p)
	o := memsim.NewObservedHierarchy(nil)
	feed(o, memsim.PathTypedSend, 2e-6, 1e-10)
	tuned := PricePackingTuned(n, p, o)
	want := 2e-6 + 1e-10*float64(n)
	if diff := tuned.TypedSend - want; diff > want*0.05 || diff < -want*0.05 {
		t.Errorf("tuned TypedSend %.3g, want ~%.3g", tuned.TypedSend, want)
	}
	if tuned.CompiledPack != base.CompiledPack {
		t.Errorf("CompiledPack moved without a packed-send fit: %.3g vs %.3g", tuned.CompiledPack, base.CompiledPack)
	}
	if tuned.FusedSend != base.FusedSend || tuned.PipelinedSend != base.PipelinedSend {
		t.Error("fused/pipelined terms moved without observations")
	}
}

// TestRecommendCollectiveIsMinimal is the pricing-consistency property
// over the E15/E16-style grids: for every (ranks × size) cell on every
// calibrated installation, the scheme RecommendCollective picks under
// GoalFastest must have the minimal priced cost among all candidate
// strategies of the collective cost model.
func TestRecommendCollectiveIsMinimal(t *testing.T) {
	ranksGrid := []int{2, 4, 8, 16}
	sizes := []int64{1 << 10, 16 << 10, 256 << 10, 1 << 22, 1 << 25}
	for _, name := range perfmodel.Names() {
		p, err := perfmodel.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, ranks := range ranksGrid {
			for _, n := range sizes {
				m := PriceCollective(ranks, n, p)
				cost := map[Scheme]float64{
					Sendv:        m.TypedCollective,
					PackCompiled: m.PackedCollective,
				}
				if m.PipelinedRing > 0 {
					cost[TypedPipelined] = m.PipelinedRing
				}
				rec := RecommendCollective(ranks, n, false, GoalFastest, p)
				chosen, ok := cost[rec.Scheme]
				if !ok {
					t.Fatalf("%s ranks=%d n=%d: recommended %s is not a priced strategy", name, ranks, n, rec.Scheme)
				}
				for s, c := range cost {
					if c < chosen {
						t.Errorf("%s ranks=%d n=%d: recommended %s (%.4g s) loses to %s (%.4g s)",
							name, ranks, n, rec.Scheme, chosen, s, c)
					}
				}
			}
		}
	}
}
