package core

import (
	"fmt"

	"repro/internal/buf"
	"repro/internal/datatype"
	"repro/internal/layout"
	"repro/internal/mpi"
)

// Tags of the ping-pong protocol.
const (
	pingTag = 0
	pongTag = 1
)

// srcSeed is the deterministic fill pattern of the source payload;
// receivers regenerate it to verify transfers byte for byte.
const srcSeed byte = 0xA5

// Runner drives one scheme on one rank of a ping-pong pair. The
// measurement protocol is the paper's (§3.2): the ping is the
// non-contiguous send, the receiver receives into a contiguous
// buffer, the pong is a zero-byte reply (two-sided) or the epoch
// fences themselves (one-sided).
//
// Buffer allocation, pattern fills (page instantiation) and datatype
// commits all happen in Setup, outside any timing loop, exactly like
// the paper's protocol.
type Runner interface {
	// Scheme identifies the send scheme.
	Scheme() Scheme
	// Setup allocates buffers and communication objects for the
	// workload. peer is the other rank of the pair.
	Setup(c *mpi.Comm, w Workload, peer int) error
	// Ping performs the timed non-contiguous transfer plus the pong
	// wait on the origin rank.
	Ping() error
	// Pong performs the receiver side of one ping-pong.
	Pong() error
	// Check verifies the last received payload byte-for-byte on the
	// receiver rank (no-op for virtual payloads).
	Check() error
	// Teardown releases communication objects (windows, attached
	// buffers). Buffers are garbage collected.
	Teardown() error
}

// NewRunner builds the Runner for a scheme.
func NewRunner(s Scheme) (Runner, error) {
	switch s {
	case Reference:
		return &referenceRunner{}, nil
	case Copying:
		return &copyingRunner{}, nil
	case Buffered:
		return &bufferedRunner{}, nil
	case VectorType:
		return &typedRunner{scheme: VectorType}, nil
	case Subarray:
		return &typedRunner{scheme: Subarray}, nil
	case OneSided:
		return &oneSidedRunner{}, nil
	case PackElement:
		return &packRunner{scheme: PackElement}, nil
	case PackVector:
		return &packRunner{scheme: PackVector}, nil
	case PackCompiled:
		return &packRunner{scheme: PackCompiled}, nil
	case Sendv:
		return &sendvRunner{}, nil
	case TypedPipelined:
		return &pipelinedRunner{}, nil
	default:
		return nil, fmt.Errorf("core: unknown scheme %v", s)
	}
}

// pairState carries what every scheme needs.
type pairState struct {
	c    *mpi.Comm
	w    Workload
	peer int

	src     buf.Block // strided source payload (sender)
	recvbuf buf.Block // contiguous destination (receiver)
	pong    buf.Block // zero-byte reply
}

func (ps *pairState) init(c *mpi.Comm, w Workload, peer int) error {
	if err := w.Validate(); err != nil {
		return err
	}
	ps.c, ps.w, ps.peer = c, w, peer
	alloc := func(n int64) buf.Block {
		if w.Virtual {
			return buf.Virtual(int(n))
		}
		// 64-byte aligned, zeroed at allocation: pages are instantiated
		// here, outside the timing loop (§3.2).
		return buf.AllocAligned(int(n))
	}
	ps.src = alloc(w.SrcBytes())
	ps.src.FillPattern(srcSeed)
	ps.recvbuf = alloc(w.Bytes())
	ps.pong = buf.Alloc(0)
	return nil
}

// pongTwoSided is the shared receiver side of all two-sided schemes:
// contiguous receive, zero-byte reply.
func (ps *pairState) pongTwoSided() error {
	if _, err := ps.c.Recv(ps.recvbuf, ps.peer, pingTag); err != nil {
		return err
	}
	return ps.c.Send(ps.pong, ps.peer, pongTag)
}

// waitPong is the shared sender-side completion of the two-sided
// ping-pong.
func (ps *pairState) waitPong() error {
	_, err := ps.c.Recv(ps.pong, ps.peer, pongTag)
	return err
}

// check verifies the receive buffer against a locally regenerated
// packed payload.
func (ps *pairState) check() error {
	if ps.w.Virtual {
		return nil
	}
	ty, err := ps.w.VectorType()
	if err != nil {
		return err
	}
	want := buf.Alloc(int(ty.Size()))
	src := buf.Alloc(int(ps.w.SrcBytes()))
	src.FillPattern(srcSeed)
	if _, err := ty.Pack(src, 1, want); err != nil {
		return err
	}
	if !buf.Equal(ps.recvbuf, want) {
		return fmt.Errorf("core: received payload differs from expected pack (%d bytes)", want.Len())
	}
	return nil
}

// gatherLoop is the user-space manual copy: the paper's "copying"
// scheme inner loop. It moves the bytes (for real payloads) and
// charges the gather cost on the virtual clock.
func (ps *pairState) gatherLoop(dst buf.Block) {
	lay := ps.w.Layout()
	st := layout.Describe(lay)
	ps.c.Charge(ps.c.Cache().GatherCost(ps.src.Region(), dst.Region(), st))
	if ps.src.IsVirtual() || dst.IsVirtual() {
		return
	}
	off := 0
	lay.ForEach(func(s layout.Segment) bool {
		buf.CopyAt(dst, off, ps.src, int(s.Off), int(s.Len))
		off += int(s.Len)
		return true
	})
}

// referenceRunner sends a contiguous buffer of the same byte count:
// the attainable rate of the installation (§2.1).
type referenceRunner struct {
	pairState
	contig buf.Block
}

func (r *referenceRunner) Scheme() Scheme { return Reference }

func (r *referenceRunner) Setup(c *mpi.Comm, w Workload, peer int) error {
	if err := r.init(c, w, peer); err != nil {
		return err
	}
	if w.Virtual {
		r.contig = buf.Virtual(int(w.Bytes()))
	} else {
		r.contig = buf.AllocAligned(int(w.Bytes()))
		// The reference payload is the packed pattern so receivers can
		// verify it with the same check as every other scheme.
		ty, err := w.VectorType()
		if err != nil {
			return err
		}
		if _, err := ty.Pack(r.src, 1, r.contig); err != nil {
			return err
		}
	}
	return nil
}

func (r *referenceRunner) Ping() error {
	if err := r.c.Send(r.contig, r.peer, pingTag); err != nil {
		return err
	}
	return r.waitPong()
}

func (r *referenceRunner) Pong() error     { return r.pongTwoSided() }
func (r *referenceRunner) Check() error    { return r.check() }
func (r *referenceRunner) Teardown() error { return nil }

// copyingRunner is §2.2: gather into a reusable contiguous buffer with
// a user loop, then send the buffer.
type copyingRunner struct {
	pairState
	sendbuf buf.Block
}

func (r *copyingRunner) Scheme() Scheme { return Copying }

func (r *copyingRunner) Setup(c *mpi.Comm, w Workload, peer int) error {
	if err := r.init(c, w, peer); err != nil {
		return err
	}
	if w.Virtual {
		r.sendbuf = buf.Virtual(int(w.Bytes()))
	} else {
		r.sendbuf = buf.AllocAligned(int(w.Bytes()))
	}
	return nil
}

func (r *copyingRunner) Ping() error {
	r.gatherLoop(r.sendbuf)
	if err := r.c.SendPacked(r.sendbuf, r.peer, pingTag); err != nil {
		return err
	}
	return r.waitPong()
}

func (r *copyingRunner) Pong() error     { return r.pongTwoSided() }
func (r *copyingRunner) Check() error    { return r.check() }
func (r *copyingRunner) Teardown() error { return nil }

// typedRunner is §2.3: send the derived datatype directly (vector or
// subarray variant).
type typedRunner struct {
	pairState
	scheme Scheme
	ty     *datatype.Type
}

func (r *typedRunner) Scheme() Scheme { return r.scheme }

func (r *typedRunner) Setup(c *mpi.Comm, w Workload, peer int) error {
	if err := r.init(c, w, peer); err != nil {
		return err
	}
	var err error
	if r.scheme == Subarray {
		r.ty, err = w.SubarrayType()
	} else {
		r.ty, err = w.VectorType()
	}
	return err
}

func (r *typedRunner) Ping() error {
	if err := r.c.SendType(r.src, 1, r.ty, r.peer, pingTag); err != nil {
		return err
	}
	return r.waitPong()
}

func (r *typedRunner) Pong() error     { return r.pongTwoSided() }
func (r *typedRunner) Check() error    { return r.check() }
func (r *typedRunner) Teardown() error { return nil }

// bufferedRunner is §2.4: attach a user buffer, MPI_Bsend the derived
// type.
type bufferedRunner struct {
	pairState
	ty       *datatype.Type
	attached bool
}

func (r *bufferedRunner) Scheme() Scheme { return Buffered }

func (r *bufferedRunner) Setup(c *mpi.Comm, w Workload, peer int) error {
	if err := r.init(c, w, peer); err != nil {
		return err
	}
	var err error
	if r.ty, err = w.VectorType(); err != nil {
		return err
	}
	// The sender attaches a buffer big enough for one in-flight
	// message, like the paper's MPI_Buffer_attach before MPI_Bsend.
	if c.Rank() == 0 {
		size := w.Bytes() + mpi.BsendOverheadBytes + 64
		var backing buf.Block
		if w.Virtual {
			backing = buf.Virtual(int(size))
		} else {
			backing = buf.AllocAligned(int(size))
		}
		if err := c.BufferAttach(backing); err != nil {
			return err
		}
		r.attached = true
	}
	return nil
}

func (r *bufferedRunner) Ping() error {
	if err := r.c.BsendType(r.src, 1, r.ty, r.peer, pingTag); err != nil {
		return err
	}
	return r.waitPong()
}

func (r *bufferedRunner) Pong() error  { return r.pongTwoSided() }
func (r *bufferedRunner) Check() error { return r.check() }

func (r *bufferedRunner) Teardown() error {
	if r.attached {
		r.attached = false
		_, err := r.c.BufferDetach()
		return err
	}
	return nil
}

// oneSidedRunner is §2.5: MPI_Put of the derived type surrounded by
// active-target fences; the timers surround the fences.
type oneSidedRunner struct {
	pairState
	ty  *datatype.Type
	win *mpi.Win
}

func (r *oneSidedRunner) Scheme() Scheme { return OneSided }

func (r *oneSidedRunner) Setup(c *mpi.Comm, w Workload, peer int) error {
	if err := r.init(c, w, peer); err != nil {
		return err
	}
	var err error
	if r.ty, err = w.VectorType(); err != nil {
		return err
	}
	// Both ranks expose their contiguous receive buffer; only the
	// target's is written.
	r.win, err = c.WinCreate(r.recvbuf)
	return err
}

func (r *oneSidedRunner) Ping() error {
	if err := r.win.Fence(); err != nil {
		return err
	}
	if err := r.win.Put(r.src, 1, r.ty, r.peer, 0); err != nil {
		return err
	}
	return r.win.Fence()
}

func (r *oneSidedRunner) Pong() error {
	if err := r.win.Fence(); err != nil {
		return err
	}
	return r.win.Fence()
}

func (r *oneSidedRunner) Check() error { return r.check() }

func (r *oneSidedRunner) Teardown() error {
	if r.win == nil {
		return nil
	}
	err := r.win.Free()
	r.win = nil
	return err
}

// sendvRunner is the fused zero-copy rendezvous scheme: the derived
// datatype is sent with mpi.SendvType, so under rendezvous the
// compiled plan packs the strided source straight into the receiver's
// contiguous buffer in one pass — no staging allocation, no
// MPI-internal chunk buffers — and eager-sized messages fall back to
// the ordinary typed path.
type sendvRunner struct {
	pairState
	ty *datatype.Type
}

func (r *sendvRunner) Scheme() Scheme { return Sendv }

func (r *sendvRunner) Setup(c *mpi.Comm, w Workload, peer int) error {
	if err := r.init(c, w, peer); err != nil {
		return err
	}
	var err error
	r.ty, err = w.VectorType()
	return err
}

func (r *sendvRunner) Ping() error {
	if err := r.c.SendvType(r.src, 1, r.ty, r.peer, pingTag); err != nil {
		return err
	}
	return r.waitPong()
}

func (r *sendvRunner) Pong() error     { return r.pongTwoSided() }
func (r *sendvRunner) Check() error    { return r.check() }
func (r *sendvRunner) Teardown() error { return nil }

// pipelinedRunner is the software-pipelined typed scheme: the derived
// datatype is sent with mpi.SendpType, so past the eager limit the
// rendezvous chunk loop overlaps packing against injection through the
// chunk-slot ring — the §2.3 pipelining the measured installations
// never realise — while eager-sized messages fall back to the ordinary
// typed path.
type pipelinedRunner struct {
	pairState
	ty *datatype.Type
}

func (r *pipelinedRunner) Scheme() Scheme { return TypedPipelined }

func (r *pipelinedRunner) Setup(c *mpi.Comm, w Workload, peer int) error {
	if err := r.init(c, w, peer); err != nil {
		return err
	}
	var err error
	r.ty, err = w.VectorType()
	return err
}

func (r *pipelinedRunner) Ping() error {
	if err := r.c.SendpType(r.src, 1, r.ty, r.peer, pingTag); err != nil {
		return err
	}
	return r.waitPong()
}

func (r *pipelinedRunner) Pong() error     { return r.pongTwoSided() }
func (r *pipelinedRunner) Check() error    { return r.check() }
func (r *pipelinedRunner) Teardown() error { return nil }

// packRunner covers §2.6: explicit MPI_Pack into a user buffer, then a
// contiguous send of the packed bytes. PackVector issues one pack call
// on the whole vector datatype; PackElement pays one pack call per
// element — the scheme the paper predicts to perform "very badly".
// PackCompiled issues the same single call through the compiled
// pack-plan engine, the compiled-vs-interpreted comparison column.
type packRunner struct {
	pairState
	scheme  Scheme
	ty      *datatype.Type
	sendbuf buf.Block
}

func (r *packRunner) Scheme() Scheme { return r.scheme }

func (r *packRunner) Setup(c *mpi.Comm, w Workload, peer int) error {
	if err := r.init(c, w, peer); err != nil {
		return err
	}
	var err error
	if r.ty, err = w.VectorType(); err != nil {
		return err
	}
	if w.Virtual {
		r.sendbuf = buf.Virtual(int(w.Bytes()))
	} else {
		r.sendbuf = buf.AllocAligned(int(w.Bytes()))
	}
	return nil
}

func (r *packRunner) Ping() error {
	var pos int64
	switch r.scheme {
	case PackVector:
		// One MPI_Pack call on the whole derived type (§4.3: as
		// efficient as the user copy loop).
		if err := r.c.Pack(r.src, 1, r.ty, r.sendbuf, &pos); err != nil {
			return err
		}
	case PackCompiled:
		// One pack call executed by the compiled plan kernel.
		if err := r.c.PackCompiled(r.src, 1, r.ty, r.sendbuf, &pos); err != nil {
			return err
		}
	case PackElement:
		// One MPI_Pack call per element: the per-call overhead
		// dominates. The calls are priced individually and the data
		// moves through the same pack engine.
		elems := r.w.Elems()
		r.c.Charge(float64(elems) * r.c.Profile().CallOverhead)
		st := layout.Describe(r.w.Layout())
		r.c.Charge(r.c.Cache().GatherCost(r.src.Region(), r.sendbuf.Region(), st))
		if !r.w.Virtual {
			if _, err := r.ty.Pack(r.src, 1, r.sendbuf); err != nil {
				return err
			}
		}
		pos = r.w.Bytes()
	}
	if err := r.c.SendPacked(r.sendbuf.Slice(0, int(pos)), r.peer, pingTag); err != nil {
		return err
	}
	return r.waitPong()
}

func (r *packRunner) Pong() error     { return r.pongTwoSided() }
func (r *packRunner) Check() error    { return r.check() }
func (r *packRunner) Teardown() error { return nil }
