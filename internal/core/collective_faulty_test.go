package core

import (
	"strings"
	"testing"

	"repro/internal/memsim"
	"repro/internal/perfmodel"
)

func TestRecommendCollectiveUnderFaultsCleanReduces(t *testing.T) {
	p := perfmodel.Generic()
	for _, ranks := range []int{4, 16, 64} {
		for _, n := range []int64{1 << 12, 1 << 20, 1 << 24} {
			for _, goal := range []Goal{GoalBalanced, GoalFastest} {
				clean := RecommendCollective(ranks, n, false, goal, p)
				got := RecommendCollectiveUnderFaults(ranks, n, false, goal, p, memsim.FaultProfile{})
				if got.Scheme != clean.Scheme || got.Reason != clean.Reason {
					t.Fatalf("ranks=%d n=%d goal=%v: clean fault profile diverged: %+v vs %+v", ranks, n, goal, got, clean)
				}
			}
		}
	}
}

func TestPriceCollectiveUnderFaults(t *testing.T) {
	p := perfmodel.Generic()
	fp := memsim.FaultProfile{LegLossRate: 0.02, MaxRetries: 8, BaseBackoff: 20e-6, MaxBackoff: 2e-3}
	m := PriceCollectiveUnderFaults(16, 1<<24, p, fp)
	if m.Depth != 4 {
		t.Fatalf("16-rank tree priced depth %d", m.Depth)
	}
	if m.Chunks <= 1 {
		t.Fatalf("16 MiB hop priced %d chunks", m.Chunks)
	}
	if m.FaultyTyped <= m.TypedCollective {
		t.Fatal("loss did not inflate the typed collective")
	}
	if m.RingClean <= 0 || m.FaultyPipelinedRing <= m.RingClean {
		t.Fatalf("ring not priced under loss: clean %g faulty %g", m.RingClean, m.FaultyPipelinedRing)
	}
	if m.TreeDeliveryProb <= 0 || m.TreeDeliveryProb >= 1 || m.RingDeliveryProb <= 0 || m.RingDeliveryProb >= 1 {
		t.Fatalf("delivery probs %g / %g", m.TreeDeliveryProb, m.RingDeliveryProb)
	}
	// The ring must be priced even at tree sizes, so the fault ladder
	// can flip where the clean ladder never offers the ring at all.
	small := PriceCollectiveUnderFaults(8, 1<<14, p, fp)
	if !small.Tree {
		t.Skip("profile does not tree this size")
	}
	if small.PipelinedRing != 0 {
		t.Fatalf("clean model priced a ring at tree size: %g", small.PipelinedRing)
	}
	if small.RingClean <= 0 || small.FaultyPipelinedRing <= 0 {
		t.Fatalf("fault model did not price the ring at tree size: %g / %g", small.RingClean, small.FaultyPipelinedRing)
	}
}

// TestCollectiveLadderFlipsToRingUnderLoss pins the re-priced ladder:
// the typed fan's hops replay whole transfers on a fault while the
// packed-segment ring's chunked hops retransmit selectively, so as the
// fault rate climbs the typed schedule inflates faster than the ring
// and the recommendation flips to the pipelined ring — at a size where
// the clean ladder picks the typed collective.
func TestCollectiveLadderFlipsToRingUnderLoss(t *testing.T) {
	p := perfmodel.Generic()
	const ranks, n = 16, int64(1 << 24)
	if clean := RecommendCollective(ranks, n, false, GoalFastest, p); clean.Scheme != Sendv {
		t.Skipf("clean ladder picks %v here, not the typed collective", clean.Scheme)
	}
	price := func(rate float64) FaultyCollectiveModel {
		return PriceCollectiveUnderFaults(ranks, n, p, memsim.FaultProfile{LegLossRate: rate, MaxRetries: 8, BaseBackoff: 20e-6, MaxBackoff: 2e-3})
	}
	// The ring's relative standing improves monotonically with loss.
	rates := []float64{0.005, 0.02, 0.05, 0.1}
	prev := price(0).RingGainUnderFaults()
	for _, rate := range rates {
		g := price(rate).RingGainUnderFaults()
		if g <= prev {
			t.Fatalf("ring gain not monotone in loss: %.4f at rate below %g, then %.4f", prev, rate, g)
		}
		prev = g
	}
	// And past 2% loss the ladder actually flips.
	rec := RecommendCollectiveUnderFaults(ranks, n, false, GoalFastest, p, memsim.FaultProfile{LegLossRate: 0.02, MaxRetries: 8})
	if rec.Scheme != TypedPipelined {
		t.Fatalf("ladder did not flip to the ring at 2%% leg loss: %+v", rec)
	}
	if !strings.Contains(rec.Reason, "fault-adjusted") {
		t.Fatalf("reason not annotated: %q", rec.Reason)
	}
}

// TestDeepTreeLosesReliabilityToRing pins the exposure accounting: the
// tree's store-and-forward critical path compounds per-hop loss, and
// with chunked hops the ring's selective recovery delivers the whole
// collective with higher probability than the whole-replay tree even
// though the ring crosses more edges.
func TestDeepTreeLosesReliabilityToRing(t *testing.T) {
	p := perfmodel.Generic()
	fp := memsim.FaultProfile{LegLossRate: 0.05, MaxRetries: 1}
	m := PriceCollectiveUnderFaults(16, 1<<24, p, fp)
	if m.Chunks <= 1 {
		t.Fatalf("hop priced %d chunks", m.Chunks)
	}
	if m.RingDeliveryProb <= m.TreeDeliveryProb {
		t.Fatalf("selective ring delivery %g not above whole-replay tree delivery %g",
			m.RingDeliveryProb, m.TreeDeliveryProb)
	}
	// Exposure grows with depth: a deeper fan faults more often per
	// attempt.
	shallow := PriceCollectiveUnderFaults(4, 1<<24, p, fp)
	if m.TreeExposure <= shallow.TreeExposure {
		t.Fatalf("exposure not monotone in depth: %g (16 ranks) vs %g (4 ranks)",
			m.TreeExposure, shallow.TreeExposure)
	}
}
