package core

import (
	"fmt"

	"repro/internal/memsim"
	"repro/internal/perfmodel"
)

// FaultyCostModel extends PackingCostModel with fault-adjusted
// expected one-way times under a lossy fabric with checksum-verified
// retransmission (memsim.FaultProfile). The adjustment follows the
// executor's actual recovery unit: integrity covers the whole payload
// stream, so a resend-class fault on any delivery leg — the rendezvous
// envelope or any internal-chunk data leg — retries the entire
// transfer, and the retry closure replays the full pack/inject pass.
type FaultyCostModel struct {
	PackingCostModel
	Faults memsim.FaultProfile

	// Legs is the number of faultable delivery legs per attempt: one
	// for an eager message, envelope + internal chunks for rendezvous.
	Legs int64

	// Fault-adjusted expected one-way times, mirroring the clean
	// fields of PackingCostModel.
	FaultyCompiledPack  float64
	FaultyTypedSend     float64
	FaultyFusedSend     float64
	FaultyPipelinedSend float64

	// DeliveryProb is the probability the transfer completes within
	// the retry budget at all; below 1 the expected times above are
	// conditioned on the attempts actually made.
	DeliveryProb float64
}

// Slowdown returns the fault-induced inflation of the typed send:
// expected lossy time over clean time.
func (m FaultyCostModel) Slowdown() float64 {
	if m.TypedSend <= 0 {
		return 1
	}
	return m.FaultyTypedSend / m.TypedSend
}

// PricePackingUnderFaults evaluates the packing cost model for n
// payload bytes on profile p, then inflates each scheme by the
// expected retries and backoff of the fault profile.
func PricePackingUnderFaults(n int64, p *perfmodel.Profile, fp memsim.FaultProfile) FaultyCostModel {
	m := FaultyCostModel{PackingCostModel: PricePacking(n, p), Faults: fp}
	m.Legs = 1
	if n > 0 && !p.Eager(n, false) {
		m.Legs = 1 + p.Chunks(n)
	}
	m.FaultyCompiledPack = fp.InflateTransfer(m.CompiledPack, m.CompiledPack, m.Legs)
	m.FaultyTypedSend = fp.InflateTransfer(m.TypedSend, m.TypedSend, m.Legs)
	if m.FusedSend > 0 {
		m.FaultyFusedSend = fp.InflateTransfer(m.FusedSend, m.FusedSend, m.Legs)
	}
	if m.PipelinedSend > 0 {
		// A retry of the pipelined engine drains the slot ring and
		// replays the span serially before the overlap refills, so the
		// resend unit is the serial typed cost, not the pipelined one:
		// overlap only pays off on clean attempts.
		m.FaultyPipelinedSend = fp.InflateTransfer(m.PipelinedSend, m.TypedSend, m.Legs)
	}
	m.DeliveryProb = fp.TransferDeliveryProb(m.Legs)
	return m
}

// RecommendUnderFaults is the fault-adjusted variant of Recommend: the
// same scheme ladder, priced with expected retries and backoff folded
// in. On a clean fabric it reduces exactly to Recommend. On a lossy
// one the ladder can reorder — most visibly, the pipelined chunk
// engine loses its edge first, because every retry replays its span
// serially while the clean model's overlap is what justified it.
func RecommendUnderFaults(n int64, contiguous bool, goal Goal, p *perfmodel.Profile, fp memsim.FaultProfile) Recommendation {
	if !fp.Enabled() {
		return Recommend(n, contiguous, goal, p)
	}
	if contiguous {
		return Recommendation{
			Scheme: Reference,
			Reason: "payload is contiguous; a plain send attains the hardware rate (retries inflate every scheme equally)",
		}
	}
	model := PricePackingUnderFaults(n, p, fp)
	annotate := func(r Recommendation) Recommendation {
		r.Reason = fmt.Sprintf("%s; fault-adjusted for leg loss %.3g over %d legs (budget %d, delivery prob %.4f, expected slowdown %.2fx)",
			r.Reason, fp.LegLossRate, model.Legs, fp.MaxRetries, model.DeliveryProb, model.Slowdown())
		return r
	}
	if goal != GoalFastest {
		// The balanced ladder is threshold-driven, not price-driven;
		// faults inflate all schemes by the same leg count, so the
		// thresholds stand. Annotate with the expected inflation.
		return annotate(Recommend(n, contiguous, goal, p))
	}
	if model.FaultyFusedSend > 0 && model.FaultyFusedSend < model.FaultyCompiledPack &&
		model.FaultyFusedSend < model.FaultyTypedSend &&
		(model.FaultyPipelinedSend <= 0 || model.FaultyFusedSend <= model.FaultyPipelinedSend) {
		return annotate(Recommendation{
			Scheme: Sendv,
			Reason: fmt.Sprintf("fused rendezvous models %.2fx over the datatype send on %s under loss: one pass per attempt is the cheapest retry unit",
				model.FaultyTypedSend/model.FaultyFusedSend, p.Name),
		})
	}
	if model.FaultyPipelinedSend > 0 && model.FaultyPipelinedSend < model.FaultyCompiledPack &&
		model.FaultyPipelinedSend < model.FaultyTypedSend {
		return annotate(Recommendation{
			Scheme: TypedPipelined,
			Reason: fmt.Sprintf("pipelined chunk engine still models %.2fx over the serial datatype send on %s despite serial retries",
				model.FaultyTypedSend/model.FaultyPipelinedSend, p.Name),
		})
	}
	if model.FaultyCompiledPack < model.FaultyTypedSend {
		return annotate(Recommendation{
			Scheme: PackCompiled,
			Reason: fmt.Sprintf("compiled pack (%d worker(s)) models %.2fx over the datatype send on %s under loss",
				model.Workers, model.FaultyTypedSend/model.FaultyCompiledPack, p.Name),
		})
	}
	return annotate(Recommendation{
		Scheme: PackVector,
		Reason: "MPI_Pack of a derived datatype matches the manual copy; loss inflates every scheme by the same leg count here",
	})
}
