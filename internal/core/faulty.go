package core

import (
	"fmt"

	"repro/internal/memsim"
	"repro/internal/perfmodel"
)

// FaultyCostModel extends PackingCostModel with fault-adjusted
// expected one-way times under a lossy fabric with checksum-verified
// retransmission (memsim.FaultProfile). The adjustment follows the
// executor's actual recovery unit. The chunked rendezvous engines
// recover selectively: every internal chunk carries its own checksum,
// the receiver NACKs a chunk bitmap, and a retry replays only the
// damaged chunks — so the replay work compounds with the per-chunk
// loss, not with the whole transfer. The eager and single-chunk paths
// keep PR 7's whole-transfer replay, and the WholeReplay* fields keep
// that pricing for every scheme as the comparison baseline the chaos
// studies plot.
type FaultyCostModel struct {
	PackingCostModel
	Faults memsim.FaultProfile

	// Legs is the number of faultable delivery legs per attempt: one
	// for an eager message, envelope + internal chunks for rendezvous.
	Legs int64
	// Chunks is the selective recovery unit count of the rendezvous
	// engines (the internal data chunks); 0 when the transfer is eager
	// or single-chunk, where recovery stays whole-transfer.
	Chunks int64

	// Fault-adjusted expected one-way times, mirroring the clean
	// fields of PackingCostModel.
	FaultyCompiledPack  float64
	FaultyTypedSend     float64
	FaultyFusedSend     float64
	FaultyPipelinedSend float64

	// WholeReplayTypedSend and WholeReplayPipelinedSend price the same
	// transfers under PR 7's whole-transfer replay — the baseline the
	// selective engine is measured against (E18/E21).
	WholeReplayTypedSend     float64
	WholeReplayPipelinedSend float64

	// DeliveryProb is the probability the transfer completes within
	// the retry budget at all; below 1 the expected times above are
	// conditioned on the attempts actually made.
	DeliveryProb float64
}

// Slowdown returns the fault-induced inflation of the typed send:
// expected lossy time over clean time.
func (m FaultyCostModel) Slowdown() float64 {
	if m.TypedSend <= 0 {
		return 1
	}
	return m.FaultyTypedSend / m.TypedSend
}

// SelectiveGain returns the whole-replay pipelined cost over the
// selective pipelined cost: >1 is the modeled payoff of per-chunk
// recovery for the engine with the most expensive whole-transfer
// retry.
func (m FaultyCostModel) SelectiveGain() float64 {
	if m.FaultyPipelinedSend <= 0 || m.WholeReplayPipelinedSend <= 0 {
		return 1
	}
	return m.WholeReplayPipelinedSend / m.FaultyPipelinedSend
}

// PricePackingUnderFaults evaluates the packing cost model for n
// payload bytes on profile p, then inflates each scheme by the
// expected retries and backoff of the fault profile.
func PricePackingUnderFaults(n int64, p *perfmodel.Profile, fp memsim.FaultProfile) FaultyCostModel {
	m := FaultyCostModel{PackingCostModel: PricePacking(n, p), Faults: fp}
	m.Legs = 1
	rdv := n > 0 && !p.Eager(n, false)
	if rdv {
		m.Legs = 1 + p.Chunks(n)
		if ch := p.Chunks(n); ch > 1 {
			m.Chunks = ch
		}
	}
	// Whole-replay baselines (PR 7's recovery unit) for every scheme.
	m.FaultyCompiledPack = fp.InflateTransfer(m.CompiledPack, m.CompiledPack, m.Legs)
	m.WholeReplayTypedSend = fp.InflateTransfer(m.TypedSend, m.TypedSend, m.Legs)
	if m.PipelinedSend > 0 {
		// A whole-transfer retry of the pipelined engine drains the
		// slot ring and replays the span serially before the overlap
		// refills, so its resend unit is the serial typed cost:
		// overlap only pays off on clean attempts.
		m.WholeReplayPipelinedSend = fp.InflateTransfer(m.PipelinedSend, m.TypedSend, m.Legs)
	}

	if m.Chunks > 0 {
		// Selective recovery: a damaged chunk replays only its own
		// share of the pack+inject pass, for every chunked rendezvous
		// engine — including the pipelined one, whose expensive
		// whole-span retry is exactly what the chunk bitmap avoids.
		chunkResend := m.TypedSend / float64(m.Chunks)
		m.FaultyTypedSend = fp.SelectiveInflateTransfer(m.TypedSend, chunkResend, m.Chunks)
		if m.FusedSend > 0 {
			m.FaultyFusedSend = fp.SelectiveInflateTransfer(m.FusedSend, m.FusedSend/float64(m.Chunks), m.Chunks)
		}
		if m.PipelinedSend > 0 {
			m.FaultyPipelinedSend = fp.SelectiveInflateTransfer(m.PipelinedSend, chunkResend, m.Chunks)
		}
		m.DeliveryProb = fp.SelectiveDeliveryProb(m.Chunks)
	} else {
		// Eager or single-chunk: recovery stays whole-transfer.
		m.FaultyTypedSend = m.WholeReplayTypedSend
		if m.FusedSend > 0 {
			m.FaultyFusedSend = fp.InflateTransfer(m.FusedSend, m.FusedSend, m.Legs)
		}
		m.FaultyPipelinedSend = m.WholeReplayPipelinedSend
		m.DeliveryProb = fp.TransferDeliveryProb(m.Legs)
	}
	return m
}

// RecommendUnderFaults is the fault-adjusted variant of Recommend: the
// same scheme ladder, priced with expected retries and backoff folded
// in. On a clean fabric it reduces exactly to Recommend. Under
// selective chunk retransmission the pipelined engine keeps its edge —
// its retries replay only the damaged chunks, not the whole span — so
// the lossy ladder tracks the clean one far longer than PR 7's
// whole-transfer replay did, and the recommendation flips back to the
// overlap engines.
func RecommendUnderFaults(n int64, contiguous bool, goal Goal, p *perfmodel.Profile, fp memsim.FaultProfile) Recommendation {
	if !fp.Enabled() {
		return Recommend(n, contiguous, goal, p)
	}
	if contiguous {
		return Recommendation{
			Scheme: Reference,
			Reason: "payload is contiguous; a plain send attains the hardware rate (retries inflate every scheme equally)",
		}
	}
	model := PricePackingUnderFaults(n, p, fp)
	annotate := func(r Recommendation) Recommendation {
		unit := "whole-transfer replay"
		if model.Chunks > 0 {
			unit = fmt.Sprintf("selective replay over %d chunks", model.Chunks)
		}
		r.Reason = fmt.Sprintf("%s; fault-adjusted for leg loss %.3g over %d legs (%s, budget %d, delivery prob %.4f, expected slowdown %.2fx)",
			r.Reason, fp.LegLossRate, model.Legs, unit, fp.MaxRetries, model.DeliveryProb, model.Slowdown())
		return r
	}
	if goal != GoalFastest {
		// The balanced ladder is threshold-driven, not price-driven;
		// faults inflate all schemes by the same leg count, so the
		// thresholds stand. Annotate with the expected inflation.
		return annotate(Recommend(n, contiguous, goal, p))
	}
	if model.FaultyFusedSend > 0 && model.FaultyFusedSend < model.FaultyCompiledPack &&
		model.FaultyFusedSend < model.FaultyTypedSend &&
		(model.FaultyPipelinedSend <= 0 || model.FaultyFusedSend <= model.FaultyPipelinedSend) {
		return annotate(Recommendation{
			Scheme: Sendv,
			Reason: fmt.Sprintf("fused rendezvous models %.2fx over the datatype send on %s under loss: one pass per attempt is the cheapest retry unit",
				model.FaultyTypedSend/model.FaultyFusedSend, p.Name),
		})
	}
	if model.FaultyPipelinedSend > 0 && model.FaultyPipelinedSend < model.FaultyCompiledPack &&
		model.FaultyPipelinedSend < model.FaultyTypedSend {
		return annotate(Recommendation{
			Scheme: TypedPipelined,
			Reason: fmt.Sprintf("pipelined chunk engine models %.2fx over the serial datatype send on %s: selective retransmission replays only damaged chunks, keeping the overlap",
				model.FaultyTypedSend/model.FaultyPipelinedSend, p.Name),
		})
	}
	if model.FaultyCompiledPack < model.FaultyTypedSend {
		return annotate(Recommendation{
			Scheme: PackCompiled,
			Reason: fmt.Sprintf("compiled pack (%d worker(s)) models %.2fx over the datatype send on %s under loss",
				model.Workers, model.FaultyTypedSend/model.FaultyCompiledPack, p.Name),
		})
	}
	return annotate(Recommendation{
		Scheme: PackVector,
		Reason: "MPI_Pack of a derived datatype matches the manual copy; loss inflates every scheme by the same leg count here",
	})
}
