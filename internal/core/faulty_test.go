package core

import (
	"strings"
	"testing"

	"repro/internal/memsim"
	"repro/internal/perfmodel"
)

func TestRecommendUnderFaultsCleanReducesToRecommend(t *testing.T) {
	p := perfmodel.Generic()
	for _, n := range []int64{1 << 10, 1 << 20, 1 << 27} {
		for _, goal := range []Goal{GoalBalanced, GoalFastest} {
			clean := Recommend(n, false, goal, p)
			got := RecommendUnderFaults(n, false, goal, p, memsim.FaultProfile{})
			if got.Scheme != clean.Scheme || got.Reason != clean.Reason {
				t.Fatalf("n=%d goal=%v: clean fault profile diverged: %+v vs %+v", n, goal, got, clean)
			}
		}
	}
}

func TestPricePackingUnderFaults(t *testing.T) {
	p := perfmodel.Generic()
	fp := memsim.FaultProfile{LegLossRate: 0.02, MaxRetries: 8, BaseBackoff: 20e-6, MaxBackoff: 2e-3}

	// Eager-sized payload: one leg.
	small := PricePackingUnderFaults(1<<10, p, fp)
	if small.Legs != 1 {
		t.Fatalf("eager payload priced %d legs", small.Legs)
	}
	// Rendezvous payload: envelope + internal chunks.
	big := PricePackingUnderFaults(1<<26, p, fp)
	if want := 1 + p.Chunks(1<<26); big.Legs != want {
		t.Fatalf("rdv payload priced %d legs, want %d", big.Legs, want)
	}
	if big.FaultyTypedSend <= big.TypedSend {
		t.Fatal("loss did not inflate the typed send")
	}
	if big.Slowdown() <= 1 {
		t.Fatalf("slowdown %g", big.Slowdown())
	}
	if big.DeliveryProb <= 0 || big.DeliveryProb >= 1 {
		t.Fatalf("delivery prob %g", big.DeliveryProb)
	}
	if big.DeliveryProb >= small.DeliveryProb {
		t.Fatal("more legs should deliver less reliably")
	}

	// More loss, more slowdown.
	worse := PricePackingUnderFaults(1<<26, p, memsim.FaultProfile{LegLossRate: 0.1, MaxRetries: 8})
	if worse.Slowdown() <= big.Slowdown() {
		t.Fatalf("slowdown not monotone in loss: %g vs %g", worse.Slowdown(), big.Slowdown())
	}
}

func TestRecommendUnderFaultsAnnotates(t *testing.T) {
	p := perfmodel.Generic()
	fp := memsim.FaultProfile{LegLossRate: 0.05, MaxRetries: 8, BaseBackoff: 20e-6, MaxBackoff: 2e-3}
	r := RecommendUnderFaults(1<<26, false, GoalFastest, p, fp)
	if !strings.Contains(r.Reason, "fault-adjusted") {
		t.Fatalf("reason not annotated: %q", r.Reason)
	}
	if r.Scheme == Reference {
		t.Fatalf("non-contiguous payload recommended %v", r.Scheme)
	}
	b := RecommendUnderFaults(1<<26, false, GoalBalanced, p, fp)
	clean := Recommend(1<<26, false, GoalBalanced, p)
	if b.Scheme != clean.Scheme {
		t.Fatalf("balanced ladder flipped under faults: %v vs %v", b.Scheme, clean.Scheme)
	}
	if !strings.Contains(b.Reason, "fault-adjusted") {
		t.Fatalf("balanced reason not annotated: %q", b.Reason)
	}
}

// TestPipelinedLosesEdgeUnderHeavyLoss pins the modeling asymmetry:
// retries replay the pipelined span serially, so as loss grows the
// pipelined engine's advantage over the schemes with cheap retry
// units erodes rather than holding constant.
func TestPipelinedLosesEdgeUnderHeavyLoss(t *testing.T) {
	p := perfmodel.Generic()
	n := int64(1 << 26)
	base := PricePacking(n, p)
	if base.PipelinedSend <= 0 {
		t.Skip("profile does not pipeline this size")
	}
	edge := func(rate float64) float64 {
		m := PricePackingUnderFaults(n, p, memsim.FaultProfile{LegLossRate: rate, MaxRetries: 8})
		return m.FaultyTypedSend / m.FaultyPipelinedSend
	}
	if e0, e1 := edge(0.001), edge(0.05); e1 >= e0 {
		t.Fatalf("pipelined edge did not erode under loss: %.4f → %.4f", e0, e1)
	}
}
