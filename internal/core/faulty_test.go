package core

import (
	"strings"
	"testing"

	"repro/internal/memsim"
	"repro/internal/perfmodel"
)

func TestRecommendUnderFaultsCleanReducesToRecommend(t *testing.T) {
	p := perfmodel.Generic()
	for _, n := range []int64{1 << 10, 1 << 20, 1 << 27} {
		for _, goal := range []Goal{GoalBalanced, GoalFastest} {
			clean := Recommend(n, false, goal, p)
			got := RecommendUnderFaults(n, false, goal, p, memsim.FaultProfile{})
			if got.Scheme != clean.Scheme || got.Reason != clean.Reason {
				t.Fatalf("n=%d goal=%v: clean fault profile diverged: %+v vs %+v", n, goal, got, clean)
			}
		}
	}
}

func TestPricePackingUnderFaults(t *testing.T) {
	p := perfmodel.Generic()
	fp := memsim.FaultProfile{LegLossRate: 0.02, MaxRetries: 8, BaseBackoff: 20e-6, MaxBackoff: 2e-3}

	// Eager-sized payload: one leg.
	small := PricePackingUnderFaults(1<<10, p, fp)
	if small.Legs != 1 {
		t.Fatalf("eager payload priced %d legs", small.Legs)
	}
	// Rendezvous payload: envelope + internal chunks.
	big := PricePackingUnderFaults(1<<26, p, fp)
	if want := 1 + p.Chunks(1<<26); big.Legs != want {
		t.Fatalf("rdv payload priced %d legs, want %d", big.Legs, want)
	}
	if big.FaultyTypedSend <= big.TypedSend {
		t.Fatal("loss did not inflate the typed send")
	}
	if big.Slowdown() <= 1 {
		t.Fatalf("slowdown %g", big.Slowdown())
	}
	if big.DeliveryProb <= 0 || big.DeliveryProb >= 1 {
		t.Fatalf("delivery prob %g", big.DeliveryProb)
	}
	if big.DeliveryProb >= small.DeliveryProb {
		t.Fatal("more legs should deliver less reliably")
	}

	// More loss, more slowdown (same retry/backoff pricing fields).
	worse := PricePackingUnderFaults(1<<26, p, memsim.FaultProfile{LegLossRate: 0.1, MaxRetries: 8, BaseBackoff: 20e-6, MaxBackoff: 2e-3})
	if worse.Slowdown() <= big.Slowdown() {
		t.Fatalf("slowdown not monotone in loss: %g vs %g", worse.Slowdown(), big.Slowdown())
	}
}

func TestRecommendUnderFaultsAnnotates(t *testing.T) {
	p := perfmodel.Generic()
	fp := memsim.FaultProfile{LegLossRate: 0.05, MaxRetries: 8, BaseBackoff: 20e-6, MaxBackoff: 2e-3}
	r := RecommendUnderFaults(1<<26, false, GoalFastest, p, fp)
	if !strings.Contains(r.Reason, "fault-adjusted") {
		t.Fatalf("reason not annotated: %q", r.Reason)
	}
	if r.Scheme == Reference {
		t.Fatalf("non-contiguous payload recommended %v", r.Scheme)
	}
	b := RecommendUnderFaults(1<<26, false, GoalBalanced, p, fp)
	clean := Recommend(1<<26, false, GoalBalanced, p)
	if b.Scheme != clean.Scheme {
		t.Fatalf("balanced ladder flipped under faults: %v vs %v", b.Scheme, clean.Scheme)
	}
	if !strings.Contains(b.Reason, "fault-adjusted") {
		t.Fatalf("balanced reason not annotated: %q", b.Reason)
	}
}

// TestPipelinedKeepsEdgeUnderLoss pins the flip of PR 7's conclusion:
// with selective chunk retransmission the pipelined engine no longer
// pays a whole-span serial replay per retry — a damaged chunk replays
// only itself — so its advantage over the serial typed send survives
// heavy loss, and the selective pricing sits strictly below the
// whole-replay baseline it displaced.
func TestPipelinedKeepsEdgeUnderLoss(t *testing.T) {
	p := perfmodel.Generic()
	n := int64(1 << 26)
	base := PricePacking(n, p)
	if base.PipelinedSend <= 0 {
		t.Skip("profile does not pipeline this size")
	}
	price := func(rate float64) FaultyCostModel {
		return PricePackingUnderFaults(n, p, memsim.FaultProfile{LegLossRate: rate, MaxRetries: 8})
	}
	for _, rate := range []float64{0.02, 0.05} {
		m := price(rate)
		if m.Chunks <= 1 {
			t.Fatalf("rate %g: rendezvous payload priced %d chunks", rate, m.Chunks)
		}
		// Selective recovery strictly undercuts the whole-replay
		// baseline for the engine with the expensive serial retry.
		if m.FaultyPipelinedSend >= m.WholeReplayPipelinedSend {
			t.Fatalf("rate %g: selective pipelined %g not under whole-replay %g",
				rate, m.FaultyPipelinedSend, m.WholeReplayPipelinedSend)
		}
		if m.SelectiveGain() <= 1 {
			t.Fatalf("rate %g: selective gain %g", rate, m.SelectiveGain())
		}
		// The edge itself survives: pipelined stays ahead of the serial
		// typed send even at 5% leg loss.
		if m.FaultyPipelinedSend >= m.FaultyTypedSend {
			t.Fatalf("rate %g: pipelined lost its edge: %g vs typed %g",
				rate, m.FaultyPipelinedSend, m.FaultyTypedSend)
		}
		// And selective preserves more of it than whole replay did at
		// the same rate.
		selEdge := m.FaultyTypedSend / m.FaultyPipelinedSend
		wrEdge := m.WholeReplayTypedSend / m.WholeReplayPipelinedSend
		if selEdge <= wrEdge {
			t.Fatalf("rate %g: selective edge %.4f not above whole-replay edge %.4f",
				rate, selEdge, wrEdge)
		}
	}
	// The payoff of per-chunk recovery grows with the loss rate.
	if g2, g5 := price(0.02).SelectiveGain(), price(0.05).SelectiveGain(); g5 <= g2 {
		t.Fatalf("selective gain not monotone in loss: %.4f → %.4f", g2, g5)
	}
}
