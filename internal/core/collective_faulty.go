package core

import (
	"fmt"
	"math/bits"

	"repro/internal/layout"
	"repro/internal/memsim"
	"repro/internal/perfmodel"
)

// FaultyCollectiveModel extends CollectiveCostModel with fault-adjusted
// completion times under a lossy fabric. The topologies expose very
// different loss surfaces: a binomial tree relays the payload over
// ⌈log₂ p⌉ store-and-forward hops whose failures compound down the
// critical path and whose staged legs recover by whole-transfer
// replay, while the packed-segment ring moves the same bytes in p-1
// single-hop forwards of checksummed chunks that recover selectively —
// a damaged chunk replays alone. As the fault rate climbs the deep
// tree therefore pays compounding whole-hop retries the flat ring does
// not, and the recommendation flips from the tree/fan schedules to the
// ring well before the clean model would.
type FaultyCollectiveModel struct {
	CollectiveCostModel
	Faults memsim.FaultProfile

	// Depth is the binomial tree's critical-path hop count,
	// ⌈log₂ Ranks⌉; FanHops is the flat fan's serialized wire-leg
	// count (Ranks-1).
	Depth   int
	FanHops int
	// HopLegs is the faultable delivery legs of one hop carrying the
	// per-rank payload (envelope + internal chunks for rendezvous,
	// 1 for eager); Chunks is the selective recovery unit count of a
	// rendezvous hop (0 when eager or single-chunk).
	HopLegs int64
	Chunks  int64

	// TreeExposure and RingExposure are the per-attempt probabilities
	// that at least one leg of the whole critical path faults: the
	// tree compounds HopLegs over Depth store-and-forward hops, the
	// ring over its p-1 single-hop forwards.
	TreeExposure float64
	RingExposure float64

	// Fault-adjusted completion times mirroring the clean fields.
	// FaultyTyped and FaultyPacked recover by whole-transfer replay
	// per hop (their legs carry no per-chunk checksums);
	// FaultyPipelinedRing recovers selectively per chunk. The ring is
	// priced even at tree sizes — RingClean holds its clean cost —
	// so the fault ladder can flip to it where the clean ladder never
	// would.
	FaultyTyped         float64
	FaultyPacked        float64
	FaultyTwoLevel      float64
	RingClean           float64
	FaultyPipelinedRing float64

	// TreeDeliveryProb and RingDeliveryProb are the probabilities the
	// whole collective completes within the per-transfer retry
	// budgets.
	TreeDeliveryProb float64
	RingDeliveryProb float64
}

// RingGainUnderFaults returns FaultyTyped/FaultyPipelinedRing: >1
// means the selective-recovery ring beats the typed tree/fan under the
// priced fault profile.
func (m FaultyCollectiveModel) RingGainUnderFaults() float64 {
	if m.FaultyPipelinedRing <= 0 || m.FaultyTyped <= 0 {
		return 1
	}
	return m.FaultyTyped / m.FaultyPipelinedRing
}

// PriceCollectiveUnderFaults evaluates the collective cost model for
// ranks ranks exchanging n-byte per-rank payloads on profile p, then
// inflates each topology by the expected retries and backoff of the
// fault profile, following each topology's actual recovery unit.
func PriceCollectiveUnderFaults(ranks int, n int64, p *perfmodel.Profile, fp memsim.FaultProfile) FaultyCollectiveModel {
	m := FaultyCollectiveModel{CollectiveCostModel: PriceCollective(ranks, n, p), Faults: fp}
	if n <= 0 || ranks <= 1 {
		return m
	}
	m.Depth = bits.Len(uint(ranks - 1)) // ⌈log₂ ranks⌉
	m.FanHops = ranks - 1
	wire := p.WireTime(n) + p.NetLatency
	over := p.SendOverhead + p.RecvOverhead
	hop := wire + over
	m.HopLegs = 1
	if !p.Eager(n, false) {
		m.HopLegs = 1 + p.Chunks(n)
		if ch := p.Chunks(n); ch > 1 {
			m.Chunks = ch
		}
	}

	// The ring is priced even where the clean model declines it (tree
	// sizes), reusing the clean model's formula: one serial pack, then
	// p-1 forwards of the packed block pipelined against its unpack.
	m.RingClean = m.PipelinedRing
	if m.RingClean <= 0 {
		st := layout.Describe(ForBytes(n).Layout())
		mem := memsim.NewState(&p.Mem)
		mem.SetDisabled(true)
		ringHop := memsim.PipelinedChunkCost(wire, mem.CompiledScatterCost(0, 0, st), p.Chunks(n), p.PipelineDepth())
		m.RingClean = mem.CompiledGatherCost(0, 0, st) + float64(ranks-1)*(over+ringHop)
	}

	// Critical-path hop counts per topology: the tree relays over
	// Depth store-and-forward hops; the flat fan serialises its wire
	// legs at the root.
	typedHops := m.FanHops
	if m.Tree {
		typedHops = m.Depth
	}
	m.TreeExposure = fp.DepthLossExposure(typedHops, m.HopLegs)
	m.RingExposure = fp.DepthLossExposure(ranks-1, m.HopLegs)

	// Whole-replay recovery per hop for the typed and packed
	// schedules: a faulted hop replays its full transfer.
	hopExtra := fp.InflateTransfer(hop, hop, m.HopLegs) - hop
	m.FaultyTyped = m.TypedCollective + float64(typedHops)*hopExtra
	m.FaultyPacked = m.PackedCollective + float64(typedHops)*hopExtra
	if m.TwoLevelTyped > 0 {
		// Leaders relay over a ⌈log₂ nodes⌉ tree (or fan) after one
		// intra-node hop; both stages replay whole transfers.
		twoHops := 1 + bits.Len(uint(m.Nodes-1))
		m.FaultyTwoLevel = m.TwoLevelTyped + float64(twoHops)*hopExtra
	}

	// Selective recovery per hop for the ring: the forwarded stream is
	// already chunked and checksummed, so a damaged chunk replays only
	// its own share of the hop.
	if m.Chunks > 0 {
		ringHopExtra := fp.SelectiveInflateTransfer(hop, hop/float64(m.Chunks), m.Chunks) - hop
		m.FaultyPipelinedRing = m.RingClean + float64(ranks-1)*ringHopExtra
		m.RingDeliveryProb = pow(fp.SelectiveDeliveryProb(m.Chunks), ranks-1)
	} else {
		m.FaultyPipelinedRing = m.RingClean + float64(ranks-1)*hopExtra
		m.RingDeliveryProb = pow(fp.TransferDeliveryProb(m.HopLegs), ranks-1)
	}
	m.TreeDeliveryProb = pow(fp.TransferDeliveryProb(m.HopLegs), typedHops)
	return m
}

// pow is x^k for small non-negative integer k.
func pow(x float64, k int) float64 {
	r := 1.0
	for i := 0; i < k; i++ {
		r *= x
	}
	return r
}

// RecommendCollectiveUnderFaults is the fault-adjusted variant of
// RecommendCollective: the same scheme ladder, priced with each
// topology's recovery behavior folded in. On a clean fabric it reduces
// exactly to RecommendCollective. Under loss the ⌈log₂ p⌉
// store-and-forward hops of the tree compound whole-transfer retries
// while the ring's chunked hops retry selectively, so the
// recommendation flips toward the pipelined ring as the fault rate
// climbs — including at sizes where the clean ladder prefers the tree.
func RecommendCollectiveUnderFaults(ranks int, n int64, contiguous bool, goal Goal, p *perfmodel.Profile, fp memsim.FaultProfile) Recommendation {
	if !fp.Enabled() {
		return RecommendCollective(ranks, n, contiguous, goal, p)
	}
	if contiguous {
		return Recommendation{
			Scheme: Reference,
			Reason: "slots are contiguous; the classic byte collective already rides the dense fast path (retries inflate every schedule's hops equally)",
		}
	}
	m := PriceCollectiveUnderFaults(ranks, n, p, fp)
	annotate := func(r Recommendation) Recommendation {
		r.Reason = fmt.Sprintf("%s; fault-adjusted for leg loss %.3g (%d-hop tree exposure %.3f vs ring exposure %.3f, tree delivery %.4f vs ring %.4f)",
			r.Reason, fp.LegLossRate, m.Depth, m.TreeExposure, m.RingExposure, m.TreeDeliveryProb, m.RingDeliveryProb)
		return r
	}
	if goal != GoalFastest {
		// The balanced ladder stays threshold-driven; annotate with the
		// fault exposure so the caller sees the reliability picture.
		return annotate(RecommendCollective(ranks, n, contiguous, goal, p))
	}
	if m.FaultyPipelinedRing > 0 && m.FaultyPipelinedRing < m.FaultyTyped && m.FaultyPipelinedRing <= m.FaultyPacked {
		return annotate(Recommendation{
			Scheme: TypedPipelined,
			Reason: fmt.Sprintf("pipelined packed-segment ring models %.2fx over the typed schedule on %s under loss: chunked hops retransmit selectively while every tree hop replays whole transfers",
				m.RingGainUnderFaults(), p.Name),
		})
	}
	if m.FaultyTyped <= m.FaultyPacked {
		return annotate(Recommendation{
			Scheme: Sendv,
			Reason: fmt.Sprintf("typed collective models %.2fx over pack-then-collective on %s under loss: fused legs, same hop count, cheaper replay unit",
				m.FaultyPacked/m.FaultyTyped, p.Name),
		})
	}
	return annotate(Recommendation{
		Scheme: PackCompiled,
		Reason: fmt.Sprintf("compiled pack around the contiguous collective models %.2fx over the typed legs on %s under loss",
			m.FaultyTyped/m.FaultyPacked, p.Name),
	})
}
