package core

import (
	"fmt"

	"repro/internal/memsim"
	"repro/internal/perfmodel"
)

// PricePackingTuned evaluates the packing cost model with calibrated
// predictions replaced by observed fits wherever the observed
// hierarchy has enough samples: the typed-send and packed-send terms
// become the fitted latency+bandwidth lines of the installation as it
// actually behaved on the virtual clock, while paths with too few
// observations keep the static model. A nil observed hierarchy is the
// pure calibrated model.
func PricePackingTuned(n int64, p *perfmodel.Profile, o *memsim.ObservedHierarchy) PackingCostModel {
	m := PricePacking(n, p)
	if o == nil {
		return m
	}
	if t, ok := o.Predict(memsim.PathTypedSend, n); ok {
		m.TypedSend = t
	}
	if t, ok := o.Predict(memsim.PathPackedSend, n); ok {
		m.CompiledPack = t
	}
	return m
}

// RecommendTuned is the self-tuned recommender: Recommend, upgraded to
// prefer observed behaviour over calibration. When the observed
// hierarchy has fitted at least one transfer path, the choice becomes
// a strict argmin over the candidate scheme costs of the tuned model —
// so the recommended scheme's modeled cost never exceeds any
// alternative's, and the Hunold/Träff recommender guideline
// ("recommender-choice ≤ every alternative scheme") holds by
// construction: when the fitted model says the typed send loses, the
// recommendation falls back to the faster decomposition. Under
// GoalBalanced ties break toward the derived datatype, the most
// user-friendly choice. Without usable fits (or a nil hierarchy) it
// degrades to the calibrated Recommend.
func RecommendTuned(n int64, contiguous bool, goal Goal, p *perfmodel.Profile, o *memsim.ObservedHierarchy) Recommendation {
	if contiguous {
		return Recommend(n, contiguous, goal, p)
	}
	usable := false
	if o != nil {
		for _, path := range []string{memsim.PathTypedSend, memsim.PathPackedSend} {
			if _, ok := o.Fit(path); ok {
				usable = true
				break
			}
		}
	}
	if !usable {
		return Recommend(n, contiguous, goal, p)
	}
	m := PricePackingTuned(n, p, o)
	type candidate struct {
		scheme Scheme
		cost   float64
	}
	cands := []candidate{
		{VectorType, m.TypedSend},
		{PackCompiled, m.CompiledPack},
	}
	if m.FusedSend > 0 {
		cands = append(cands, candidate{Sendv, m.FusedSend})
	}
	if m.PipelinedSend > 0 {
		cands = append(cands, candidate{TypedPipelined, m.PipelinedSend})
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.cost < best.cost {
			best = c
		}
	}
	if goal == GoalBalanced && m.TypedSend <= best.cost {
		best = candidate{VectorType, m.TypedSend}
	}
	return Recommendation{
		Scheme: best.scheme,
		Reason: fmt.Sprintf("self-tuned on %s from observed virtual-clock fits: %s models %.3g s at %d B, no alternative cheaper",
			p.Name, best.scheme, best.cost, n),
	}
}
