package layout

// DescribeFast implements Fast for the contiguous layout.
func (c Contig) DescribeFast() (Stats, bool) {
	if c.N <= 0 {
		return Stats{}, true
	}
	return Stats{
		Segments: 1,
		Bytes:    c.N,
		Extent:   c.N,
		MinBlock: c.N,
		MaxBlock: c.N,
		AvgBlock: float64(c.N),
		Density:  1,
	}, true
}

// DescribeFast implements Fast for the strided layout: the canonical
// benchmark workload with up to 10⁸ blocks, priced in O(1).
func (v Strided) DescribeFast() (Stats, bool) {
	if v.Count <= 0 || v.BlockLen <= 0 {
		return Stats{}, true
	}
	if v.Stride == v.BlockLen || v.Count == 1 {
		n := v.Count * v.BlockLen
		return Stats{
			Segments: 1,
			Bytes:    n,
			Extent:   v.Extent(),
			MinBlock: n,
			MaxBlock: n,
			AvgBlock: float64(n),
			Density:  float64(n) / float64(v.Extent()),
		}, true
	}
	gap := v.Stride - v.BlockLen
	st := Stats{
		Segments: int(v.Count),
		Bytes:    v.Size(),
		Extent:   v.Extent(),
		MinBlock: v.BlockLen,
		MaxBlock: v.BlockLen,
		AvgBlock: float64(v.BlockLen),
		MinGap:   gap,
		MaxGap:   gap,
		AvgGap:   float64(gap),
	}
	st.Density = float64(st.Bytes) / float64(st.Extent)
	return st, true
}

// DescribeFast implements Fast for 2-D subarrays.
func (s Subarray2D) DescribeFast() (Stats, bool) {
	if s.Rows <= 0 || s.Cols <= 0 {
		return Stats{}, true
	}
	if s.Cols == s.ParentCols || s.Rows == 1 {
		n := s.Rows * s.Cols * s.Elem
		return Stats{
			Segments: 1,
			Bytes:    n,
			Extent:   s.Extent(),
			MinBlock: n,
			MaxBlock: n,
			AvgBlock: float64(n),
			Density:  float64(n) / float64(s.Extent()),
		}, true
	}
	row := s.Cols * s.Elem
	gap := (s.ParentCols - s.Cols) * s.Elem
	st := Stats{
		Segments: int(s.Rows),
		Bytes:    s.Size(),
		Extent:   s.Extent(),
		MinBlock: row,
		MaxBlock: row,
		AvgBlock: float64(row),
		MinGap:   gap,
		MaxGap:   gap,
		AvgGap:   float64(gap),
	}
	st.Density = float64(st.Bytes) / float64(st.Extent)
	return st, true
}
