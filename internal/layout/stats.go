package layout

import "math"

// Stats summarises the geometry of a layout. The memory model uses
// these numbers to price gather/scatter loops: many small segments cost
// per-segment overhead, irregular gaps defeat prefetch streams (§4.7
// of the paper), and high density means good cache-line utilisation.
type Stats struct {
	Segments int   // number of contiguous runs
	Bytes    int64 // payload size
	Extent   int64 // span covered in the buffer

	MinBlock int64 // smallest segment length
	MaxBlock int64 // largest segment length
	AvgBlock float64

	MinGap int64 // smallest inter-segment gap (bytes between runs)
	MaxGap int64
	AvgGap float64
	// GapJitter is the coefficient of variation of the gaps
	// (stddev/mean); zero for perfectly regular strides. The prefetch
	// model in internal/memsim degrades with jitter.
	GapJitter float64

	// Density is Bytes/Extent in (0,1]; 1 means contiguous.
	Density float64
}

// Fast is implemented by layouts that can report their statistics in
// closed form. Describe prefers it: the benchmark's largest layouts
// have 10⁸ segments, and the cost model must not iterate them.
type Fast interface {
	DescribeFast() (Stats, bool)
}

// Describe computes layout statistics, in closed form when the layout
// supports it and by a single iteration pass otherwise.
func Describe(l Layout) Stats {
	if f, ok := l.(Fast); ok {
		if st, ok := f.DescribeFast(); ok {
			return st
		}
	}
	return describeSlow(l)
}

func describeSlow(l Layout) Stats {
	st := Stats{
		Bytes:    l.Size(),
		Extent:   l.Extent(),
		MinBlock: math.MaxInt64,
		MinGap:   math.MaxInt64,
	}
	var (
		prevEnd    int64 = -1
		sumBlock   int64
		sumGap     int64
		sumGapSq   float64
		gapSamples int64
	)
	l.ForEach(func(s Segment) bool {
		st.Segments++
		sumBlock += s.Len
		if s.Len < st.MinBlock {
			st.MinBlock = s.Len
		}
		if s.Len > st.MaxBlock {
			st.MaxBlock = s.Len
		}
		if prevEnd >= 0 {
			gap := s.Off - prevEnd
			gapSamples++
			sumGap += gap
			sumGapSq += float64(gap) * float64(gap)
			if gap < st.MinGap {
				st.MinGap = gap
			}
			if gap > st.MaxGap {
				st.MaxGap = gap
			}
		}
		prevEnd = s.End()
		return true
	})
	if st.Segments == 0 {
		st.MinBlock, st.MinGap = 0, 0
		return st
	}
	st.AvgBlock = float64(sumBlock) / float64(st.Segments)
	if gapSamples > 0 {
		st.AvgGap = float64(sumGap) / float64(gapSamples)
		mean := st.AvgGap
		variance := sumGapSq/float64(gapSamples) - mean*mean
		if variance < 0 {
			variance = 0
		}
		if mean > 0 {
			st.GapJitter = math.Sqrt(variance) / mean
		}
	} else {
		st.MinGap = 0
	}
	if st.Extent > 0 {
		st.Density = float64(st.Bytes) / float64(st.Extent)
	}
	return st
}

// Jittered builds an irregular variant of a strided layout for the
// §4.7 spacing study: Count blocks of BlockLen bytes whose gaps vary
// deterministically around the nominal stride by up to ±Jitter times
// the gap. Jitter 0 reproduces the regular strided layout exactly.
// The pseudo-random sequence is a fixed xorshift so runs are
// reproducible without seeding.
func Jittered(count, blockLen, stride int64, jitter float64) *Indexed {
	if jitter < 0 {
		jitter = 0
	}
	if jitter > 1 {
		jitter = 1
	}
	gap := stride - blockLen
	if gap < 0 {
		gap = 0
	}
	segs := make([]Segment, 0, count)
	var off int64
	state := uint64(0x9e3779b97f4a7c15)
	for i := int64(0); i < count; i++ {
		segs = append(segs, Segment{Off: off, Len: blockLen})
		// xorshift64* for a deterministic jitter in [-1, 1).
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		u := float64((state*0x2545f4914f6cdd1d)>>11) / float64(1<<53) // [0,1)
		delta := int64(float64(gap) * jitter * (2*u - 1))
		off += blockLen + gap + delta
	}
	return MustIndexed(segs)
}
