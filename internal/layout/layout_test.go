package layout

import (
	"testing"
	"testing/quick"
)

func TestContig(t *testing.T) {
	c := Contig{N: 100}
	if c.Size() != 100 || c.Extent() != 100 || c.SegmentCount() != 1 {
		t.Fatalf("contig: size=%d extent=%d segs=%d", c.Size(), c.Extent(), c.SegmentCount())
	}
	if err := Validate(c); err != nil {
		t.Fatal(err)
	}
	segs := Segments(c)
	if len(segs) != 1 || segs[0] != (Segment{Off: 0, Len: 100}) {
		t.Fatalf("segments = %+v", segs)
	}
}

func TestContigEmpty(t *testing.T) {
	c := Contig{N: 0}
	if c.SegmentCount() != 0 || len(Segments(c)) != 0 {
		t.Fatal("empty contig has segments")
	}
}

func TestStridedBasics(t *testing.T) {
	// The paper's canonical layout: every other float64.
	v := Strided{Count: 4, BlockLen: 8, Stride: 16}
	if v.Size() != 32 {
		t.Fatalf("size = %d", v.Size())
	}
	if v.Extent() != 3*16+8 {
		t.Fatalf("extent = %d", v.Extent())
	}
	want := []Segment{{0, 8}, {16, 8}, {32, 8}, {48, 8}}
	got := Segments(v)
	if len(got) != len(want) {
		t.Fatalf("segments = %+v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("segment %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if err := Validate(v); err != nil {
		t.Fatal(err)
	}
}

func TestStridedDegeneratesToContig(t *testing.T) {
	v := Strided{Count: 10, BlockLen: 8, Stride: 8}
	if v.SegmentCount() != 1 {
		t.Fatalf("dense stride should coalesce, got %d segments", v.SegmentCount())
	}
	if err := Validate(v); err != nil {
		t.Fatal(err)
	}
}

func TestIndexedSortsAndValidates(t *testing.T) {
	x, err := NewIndexed([]Segment{{Off: 64, Len: 8}, {Off: 0, Len: 8}})
	if err != nil {
		t.Fatal(err)
	}
	segs := Segments(x)
	if segs[0].Off != 0 || segs[1].Off != 64 {
		t.Fatalf("not sorted: %+v", segs)
	}
	if x.Size() != 16 || x.Extent() != 72 {
		t.Fatalf("size=%d extent=%d", x.Size(), x.Extent())
	}
}

func TestIndexedRejectsOverlap(t *testing.T) {
	if _, err := NewIndexed([]Segment{{0, 16}, {8, 8}}); err == nil {
		t.Fatal("overlap accepted")
	}
}

func TestSubarray2D(t *testing.T) {
	// 2x3 block at (1,1) of a 4x8 float64 array.
	s := Subarray2D{Elem: 8, ParentCols: 8, StartRow: 1, StartCol: 1, Rows: 2, Cols: 3}
	if s.Size() != 2*3*8 {
		t.Fatalf("size = %d", s.Size())
	}
	segs := Segments(s)
	if len(segs) != 2 {
		t.Fatalf("segments = %+v", segs)
	}
	if segs[0] != (Segment{Off: (8 + 1) * 8, Len: 24}) {
		t.Fatalf("row 0 = %+v", segs[0])
	}
	if segs[1] != (Segment{Off: (16 + 1) * 8, Len: 24}) {
		t.Fatalf("row 1 = %+v", segs[1])
	}
	if err := Validate(s); err != nil {
		t.Fatal(err)
	}
}

func TestSubarrayFullRowsCoalesce(t *testing.T) {
	s := Subarray2D{Elem: 8, ParentCols: 4, Rows: 3, Cols: 4}
	if s.SegmentCount() != 1 {
		t.Fatalf("full-width subarray should be one segment, got %d", s.SegmentCount())
	}
}

func TestDescribeStrided(t *testing.T) {
	v := Strided{Count: 100, BlockLen: 8, Stride: 16}
	st := Describe(v)
	if st.Segments != 100 || st.Bytes != 800 {
		t.Fatalf("stats = %+v", st)
	}
	if st.AvgGap != 8 || st.GapJitter != 0 {
		t.Fatalf("gap stats = %+v", st)
	}
	if st.Density < 0.49 || st.Density > 0.51 {
		t.Fatalf("density = %v", st.Density)
	}
}

// Property: the closed-form statistics of Strided agree with the
// iterated ones for arbitrary geometry.
func TestQuickDescribeFastMatchesSlow(t *testing.T) {
	f := func(count, block, extra uint8) bool {
		c := int64(count)%64 + 1
		b := int64(block)%32 + 1
		s := b + int64(extra)%32
		v := Strided{Count: c, BlockLen: b, Stride: s}
		fast, ok := v.DescribeFast()
		if !ok {
			return false
		}
		slow := describeSlow(v)
		return fast.Segments == slow.Segments &&
			fast.Bytes == slow.Bytes &&
			fast.Extent == slow.Extent &&
			fast.MinBlock == slow.MinBlock &&
			fast.MaxBlock == slow.MaxBlock &&
			almostEq(fast.AvgGap, slow.AvgGap) &&
			almostEq(fast.Density, slow.Density)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func almostEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+abs(a)+abs(b))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Property: jitter 0 reproduces the regular strided layout.
func TestQuickJitteredZeroIsStrided(t *testing.T) {
	f := func(count, block, extra uint8) bool {
		c := int64(count)%32 + 1
		b := int64(block)%16 + 1
		s := b + int64(extra)%16
		j := Jittered(c, b, s, 0)
		want := Segments(Strided{Count: c, BlockLen: b, Stride: s})
		got := Segments(j)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJitteredIncreasesGapJitter(t *testing.T) {
	reg := Describe(Jittered(1000, 8, 32, 0))
	irr := Describe(Jittered(1000, 8, 32, 0.9))
	if reg.GapJitter != 0 {
		t.Fatalf("regular jitter = %v", reg.GapJitter)
	}
	if irr.GapJitter <= 0.2 {
		t.Fatalf("jittered layout jitter = %v, want > 0.2", irr.GapJitter)
	}
	if irr.Bytes != reg.Bytes {
		t.Fatalf("jitter changed payload: %d vs %d", irr.Bytes, reg.Bytes)
	}
}

func TestValidateCatchesLies(t *testing.T) {
	if err := Validate(badLayout{}); err == nil {
		t.Fatal("Validate accepted a lying layout")
	}
}

// badLayout advertises a wrong Size.
type badLayout struct{}

func (badLayout) Size() int64   { return 5 }
func (badLayout) Extent() int64 { return 10 }
func (badLayout) ForEach(fn func(Segment) bool) {
	fn(Segment{Off: 0, Len: 10})
}
func (badLayout) SegmentCount() int { return 1 }
func (badLayout) Name() string      { return "bad" }
