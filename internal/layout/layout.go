// Package layout describes where the payload bytes of a non-contiguous
// message live inside a user buffer.
//
// A Layout is a purely geometric object: an ordered list of contiguous
// byte runs (Segments) relative to the start of a buffer. The derived
// datatype engine (internal/datatype) flattens its type maps into
// layouts; the memory model (internal/memsim) prices gather/scatter
// loops from layout statistics (segment count, gap regularity, block
// size); and the workload generators of the benchmark harness construct
// the strided, indexed and subarray layouts the paper motivates in §1:
// the real parts of a complex array, every other element of a grid
// during multigrid coarsening, and irregularly spaced FEM boundary
// elements.
package layout

import (
	"fmt"
	"sort"
)

// Segment is one contiguous run of Len bytes starting Off bytes into a
// buffer.
type Segment struct {
	Off int64
	Len int64
}

// End returns the first byte past the segment.
func (s Segment) End() int64 { return s.Off + s.Len }

// Layout is an ordered collection of byte segments within a buffer.
//
// Implementations must return segments in ascending, non-overlapping
// offset order so that pack/unpack engines can stream them.
type Layout interface {
	// Size is the payload: the total number of bytes selected.
	Size() int64
	// Extent is the span from the first selected byte to one past the
	// last, i.e. the minimal buffer length that contains the layout.
	Extent() int64
	// ForEach calls fn for each segment in order. fn returning false
	// stops the iteration early.
	ForEach(fn func(Segment) bool)
	// SegmentCount is the number of contiguous runs.
	SegmentCount() int
	// Name identifies the layout family for reports.
	Name() string
}

// Segments materialises the full segment list of a layout.
func Segments(l Layout) []Segment {
	out := make([]Segment, 0, l.SegmentCount())
	l.ForEach(func(s Segment) bool {
		out = append(out, s)
		return true
	})
	return out
}

// Validate checks the ordering and non-overlap contract and that the
// advertised Size and Extent match the segments.
func Validate(l Layout) error {
	var (
		size int64
		prev int64 = -1
		last int64
		errv error
	)
	l.ForEach(func(s Segment) bool {
		if s.Len < 0 || s.Off < 0 {
			errv = fmt.Errorf("layout %s: negative segment %+v", l.Name(), s)
			return false
		}
		if s.Off < prev {
			errv = fmt.Errorf("layout %s: segment at %d overlaps or precedes previous end %d", l.Name(), s.Off, prev)
			return false
		}
		prev = s.End()
		size += s.Len
		last = s.End()
		return true
	})
	if errv != nil {
		return errv
	}
	if size != l.Size() {
		return fmt.Errorf("layout %s: Size()=%d but segments sum to %d", l.Name(), l.Size(), size)
	}
	if l.SegmentCount() > 0 && last > l.Extent() {
		return fmt.Errorf("layout %s: Extent()=%d but last segment ends at %d", l.Name(), l.Extent(), last)
	}
	return nil
}

// Contig is a single contiguous run of N bytes at offset 0: the
// reference layout.
type Contig struct {
	N int64
}

// Size implements Layout.
func (c Contig) Size() int64 { return c.N }

// Extent implements Layout.
func (c Contig) Extent() int64 { return c.N }

// SegmentCount implements Layout.
func (c Contig) SegmentCount() int {
	if c.N == 0 {
		return 0
	}
	return 1
}

// ForEach implements Layout.
func (c Contig) ForEach(fn func(Segment) bool) {
	if c.N > 0 {
		fn(Segment{Off: 0, Len: c.N})
	}
}

// Name implements Layout.
func (c Contig) Name() string { return "contig" }

// Strided is the paper's canonical workload: Count blocks of BlockLen
// bytes, the start of consecutive blocks separated by Stride bytes.
// BlockLen = 8 and Stride = 16 selects every other float64, the
// "simplest case of a derived type" the paper measures.
type Strided struct {
	Count    int64
	BlockLen int64
	Stride   int64
}

// Size implements Layout.
func (v Strided) Size() int64 { return v.Count * v.BlockLen }

// Extent implements Layout.
func (v Strided) Extent() int64 {
	if v.Count == 0 {
		return 0
	}
	return (v.Count-1)*v.Stride + v.BlockLen
}

// SegmentCount implements Layout. Adjacent blocks merge when the
// stride equals the block length (the layout degenerates to
// contiguous).
func (v Strided) SegmentCount() int {
	if v.Count == 0 || v.BlockLen == 0 {
		return 0
	}
	if v.Stride == v.BlockLen {
		return 1
	}
	return int(v.Count)
}

// ForEach implements Layout.
func (v Strided) ForEach(fn func(Segment) bool) {
	if v.Count == 0 || v.BlockLen == 0 {
		return
	}
	if v.Stride == v.BlockLen {
		fn(Segment{Off: 0, Len: v.Count * v.BlockLen})
		return
	}
	for i := int64(0); i < v.Count; i++ {
		if !fn(Segment{Off: i * v.Stride, Len: v.BlockLen}) {
			return
		}
	}
}

// Name implements Layout.
func (v Strided) Name() string { return "strided" }

// Indexed is an explicit, irregular list of segments, such as an FEM
// boundary-element gather. Construct it with NewIndexed, which sorts
// and validates the segments.
type Indexed struct {
	segs   []Segment
	size   int64
	extent int64
	name   string
}

// NewIndexed builds an Indexed layout from a segment list. Segments
// are sorted by offset and touching segments are coalesced, matching
// the canonical form the other layouts use; overlapping segments are
// rejected; zero-length segments are dropped.
func NewIndexed(segs []Segment) (*Indexed, error) {
	s := make([]Segment, 0, len(segs))
	for _, seg := range segs {
		if seg.Len < 0 || seg.Off < 0 {
			return nil, fmt.Errorf("layout: negative segment %+v", seg)
		}
		if seg.Len > 0 {
			s = append(s, seg)
		}
	}
	sort.Slice(s, func(i, j int) bool { return s[i].Off < s[j].Off })
	var size, extent int64
	out := s[:0]
	for _, seg := range s {
		if n := len(out); n > 0 {
			if seg.Off < out[n-1].End() {
				return nil, fmt.Errorf("layout: segment at offset %d overlaps previous ending at %d", seg.Off, out[n-1].End())
			}
			if seg.Off == out[n-1].End() {
				out[n-1].Len += seg.Len
				size += seg.Len
				extent = out[n-1].End()
				continue
			}
		}
		out = append(out, seg)
		size += seg.Len
		extent = seg.End()
	}
	return &Indexed{segs: out, size: size, extent: extent, name: "indexed"}, nil
}

// MustIndexed is NewIndexed that panics on error, for tests and
// literals known to be valid.
func MustIndexed(segs []Segment) *Indexed {
	l, err := NewIndexed(segs)
	if err != nil {
		panic(err)
	}
	return l
}

// Size implements Layout.
func (x *Indexed) Size() int64 { return x.size }

// Extent implements Layout.
func (x *Indexed) Extent() int64 { return x.extent }

// SegmentCount implements Layout.
func (x *Indexed) SegmentCount() int { return len(x.segs) }

// ForEach implements Layout.
func (x *Indexed) ForEach(fn func(Segment) bool) {
	for _, s := range x.segs {
		if !fn(s) {
			return
		}
	}
}

// Name implements Layout.
func (x *Indexed) Name() string { return x.name }

// Subarray2D selects a Rows×Cols sub-block of a row-major parent array
// with ParentCols columns of Elem-byte elements, starting at
// (StartRow, StartCol). This mirrors MPI_Type_create_subarray in two
// dimensions, the "subarray" curve of the paper's figures.
type Subarray2D struct {
	Elem       int64 // element size in bytes
	ParentCols int64 // row length of the parent array, in elements
	StartRow   int64
	StartCol   int64
	Rows       int64
	Cols       int64
}

// Size implements Layout.
func (s Subarray2D) Size() int64 { return s.Rows * s.Cols * s.Elem }

// Extent implements Layout.
func (s Subarray2D) Extent() int64 {
	if s.Rows == 0 || s.Cols == 0 {
		return 0
	}
	return ((s.StartRow+s.Rows-1)*s.ParentCols + s.StartCol + s.Cols) * s.Elem
}

// SegmentCount implements Layout. Rows merge into one segment when the
// selection spans full parent rows.
func (s Subarray2D) SegmentCount() int {
	if s.Rows == 0 || s.Cols == 0 {
		return 0
	}
	if s.Cols == s.ParentCols {
		return 1
	}
	return int(s.Rows)
}

// ForEach implements Layout.
func (s Subarray2D) ForEach(fn func(Segment) bool) {
	if s.Rows == 0 || s.Cols == 0 {
		return
	}
	if s.Cols == s.ParentCols {
		off := s.StartRow * s.ParentCols * s.Elem
		fn(Segment{Off: off, Len: s.Rows * s.Cols * s.Elem})
		return
	}
	rowLen := s.Cols * s.Elem
	for r := int64(0); r < s.Rows; r++ {
		off := ((s.StartRow+r)*s.ParentCols + s.StartCol) * s.Elem
		if !fn(Segment{Off: off, Len: rowLen}) {
			return
		}
	}
}

// Name implements Layout.
func (s Subarray2D) Name() string { return "subarray2d" }
