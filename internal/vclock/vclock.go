// Package vclock implements the deterministic virtual-time substrate
// of the simulated cluster.
//
// Every rank goroutine owns a Clock. Local work advances the clock by
// model costs; a message carries the sender's injection-complete
// timestamp, and the receiver folds it in with AdvanceTo; collective
// synchronisation points (barriers, window fences) use a Group, which
// blocks all participants and releases them at the maximum deposited
// time. Because each rank's operation sequence is deterministic in the
// benchmark patterns, the resulting timeline is independent of Go
// scheduler interleaving — the property that makes the reproduced
// figures exactly repeatable.
package vclock

import (
	"fmt"
	"sync"
	"time"
)

// Time is a point in virtual time, in nanoseconds from the start of
// the run.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// FromSeconds converts a floating-point cost in seconds (the unit the
// performance model computes in) to a Duration, rounding to the
// nearest nanosecond.
func FromSeconds(s float64) Duration {
	if s < 0 {
		s = 0
	}
	return Duration(s*1e9 + 0.5)
}

// Seconds converts a Duration to float64 seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Seconds converts a Time to float64 seconds since run start.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// String formats the time with the resolution the paper reports
// (microseconds and up).
func (t Time) String() string {
	return time.Duration(t).String()
}

// Clock is one rank's virtual clock. It is owned by a single goroutine
// and is not safe for concurrent use; cross-rank interaction happens
// via message timestamps and Groups, never by sharing a Clock.
type Clock struct {
	now Time
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. Negative durations are
// clamped to zero so model rounding can never move time backwards.
func (c *Clock) Advance(d Duration) Time {
	if d > 0 {
		c.now += Time(d)
	}
	return c.now
}

// AdvanceTo moves the clock to t if t is later than now, returning the
// new current time. This is the "receive" rule: local time becomes the
// maximum of local progress and message arrival.
func (c *Clock) AdvanceTo(t Time) Time {
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Reset rewinds the clock to zero (used between harness repetitions
// that model independent runs).
func (c *Clock) Reset() { c.now = 0 }

// Group synchronises n participants in virtual time: each deposits its
// local time and blocks; when all n have arrived everyone resumes at
// the maximum time (plus any synchronisation cost the caller adds
// afterwards). A Group is reusable across consecutive epochs, like a
// classic two-phase barrier.
type Group struct {
	mu          sync.Mutex
	cond        *sync.Cond
	n           int
	arrived     int
	epoch       uint64
	maxTime     Time // running max of the in-flight epoch
	lastMax     Time // released value of the completed epoch
	interrupted bool // Interrupt called: no epoch can complete any more
}

// NewGroup creates a synchronisation group for n participants.
func NewGroup(n int) *Group {
	if n <= 0 {
		panic(fmt.Sprintf("vclock: group size %d", n))
	}
	g := &Group{n: n}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Size returns the number of participants.
func (g *Group) Size() int { return g.n }

// Sync deposits t and blocks until all participants of the current
// epoch have deposited, then returns the maximum deposited time. All
// participants of one epoch receive the same value.
func (g *Group) Sync(t Time) Time {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.interrupted {
		// A torn-down run: nobody else may ever arrive, so blocking
		// would hang the caller forever. Resume at the deposited time;
		// the fabric abort error surfaces through the next fabric
		// operation.
		return t
	}
	epoch := g.epoch
	if t > g.maxTime {
		g.maxTime = t
	}
	g.arrived++
	if g.arrived == g.n {
		// Last arrival publishes the epoch maximum, resets the running
		// max for the next epoch, and releases the waiters. A fast
		// participant can re-enter Sync for the next epoch before the
		// waiters wake, which is why the released value lives in
		// lastMax rather than maxTime: the next epoch cannot complete
		// (and overwrite lastMax) until every current waiter has left.
		g.lastMax = g.maxTime
		g.maxTime = 0
		g.arrived = 0
		g.epoch++
		g.cond.Broadcast()
		return g.lastMax
	}
	for g.epoch == epoch && !g.interrupted {
		g.cond.Wait()
	}
	if g.epoch == epoch {
		// Woken by Interrupt with the epoch still open: resume at the
		// best time known so far rather than a completed maximum.
		if g.maxTime > t {
			return g.maxTime
		}
		return t
	}
	return g.lastMax
}

// Epoch returns the current epoch number. A blocked Sync participant
// of epoch e is released exactly when the epoch advances past e, so
// "Epoch() != e" is the readiness predicate the deadlock detector
// checks for barrier waiters.
func (g *Group) Epoch() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.epoch
}

// Interrupt permanently releases every current and future Sync caller
// without completing their epoch — the teardown path when the fabric
// aborts a deadlocked or failed run. Participants resume at their own
// deposited time; the abort reason travels through the fabric, not the
// group.
func (g *Group) Interrupt() {
	g.mu.Lock()
	g.interrupted = true
	g.mu.Unlock()
	g.cond.Broadcast()
}
