package vclock

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("fresh clock not at zero")
	}
	c.Advance(FromSeconds(1e-6))
	if c.Now() != 1000 {
		t.Fatalf("Now = %d, want 1000", c.Now())
	}
	c.Advance(-5)
	if c.Now() != 1000 {
		t.Fatal("negative advance moved the clock")
	}
}

func TestClockAdvanceTo(t *testing.T) {
	var c Clock
	c.Advance(100)
	if got := c.AdvanceTo(50); got != 100 {
		t.Fatalf("AdvanceTo(50) = %d, want 100 (no rewind)", got)
	}
	if got := c.AdvanceTo(500); got != 500 {
		t.Fatalf("AdvanceTo(500) = %d", got)
	}
}

func TestFromSecondsRounds(t *testing.T) {
	if d := FromSeconds(1.5e-9); d != 2 {
		t.Fatalf("FromSeconds(1.5ns) = %d, want 2", d)
	}
	if d := FromSeconds(-1); d != 0 {
		t.Fatalf("negative seconds produced %d", d)
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	d := FromSeconds(3.25e-3)
	if got := d.Seconds(); got < 3.2499e-3 || got > 3.2501e-3 {
		t.Fatalf("round trip = %v", got)
	}
}

func TestGroupSyncMax(t *testing.T) {
	g := NewGroup(3)
	var wg sync.WaitGroup
	results := make([]Time, 3)
	times := []Time{10, 300, 42}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = g.Sync(times[i])
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r != 300 {
			t.Fatalf("participant %d got %d, want 300", i, r)
		}
	}
}

func TestGroupReusableEpochs(t *testing.T) {
	g := NewGroup(2)
	for epoch := 0; epoch < 100; epoch++ {
		var wg sync.WaitGroup
		var a, b Time
		wg.Add(2)
		go func() { defer wg.Done(); a = g.Sync(Time(epoch)) }()
		go func() { defer wg.Done(); b = g.Sync(Time(epoch * 2)) }()
		wg.Wait()
		want := Time(epoch * 2)
		if epoch == 0 {
			want = 0
		}
		if a != want || b != want {
			t.Fatalf("epoch %d: got %d/%d want %d", epoch, a, b, want)
		}
	}
}

func TestGroupSingleParticipant(t *testing.T) {
	g := NewGroup(1)
	if got := g.Sync(77); got != 77 {
		t.Fatalf("Sync = %d", got)
	}
	if got := g.Sync(33); got != 33 {
		t.Fatalf("second epoch Sync = %d", got)
	}
}

func TestGroupSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGroup(0) did not panic")
		}
	}()
	NewGroup(0)
}

// Property: the clock is monotone under any sequence of Advance and
// AdvanceTo operations.
func TestQuickClockMonotone(t *testing.T) {
	f := func(ops []int16) bool {
		var c Clock
		prev := c.Now()
		for _, op := range ops {
			if op >= 0 {
				c.Advance(Duration(op))
			} else {
				c.AdvanceTo(Time(-op) * 3)
			}
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: group sync returns the maximum regardless of arrival
// order.
func TestQuickGroupMax(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 16 {
			raw = raw[:16]
		}
		g := NewGroup(len(raw))
		var wg sync.WaitGroup
		results := make([]Time, len(raw))
		var want Time
		for _, r := range raw {
			if Time(r) > want {
				want = Time(r)
			}
		}
		for i, r := range raw {
			wg.Add(1)
			go func(i int, tm Time) {
				defer wg.Done()
				results[i] = g.Sync(tm)
			}(i, Time(r))
		}
		wg.Wait()
		for _, got := range results {
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
