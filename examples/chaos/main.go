// Chaos: run a typed ring exchange on a lossy fabric and watch the
// checksum/ACK/retry machinery recover — then exhaust the retry
// budget on purpose and catch the typed errors, including the
// deadlock detector's structured report.
//
// Run with:
//
//	go run ./examples/chaos
package main

import (
	"errors"
	"fmt"
	"log"

	"repro"

	"repro/internal/buf"
)

func main() {
	prof, err := repro.ProfileByName("skx-impi")
	if err != nil {
		log.Fatal(err)
	}

	// A 4 MB every-other-double payload, the paper's canonical layout.
	ty, err := repro.TypeVector(1<<18, 1, 2, repro.TypeFloat64)
	if err != nil {
		log.Fatal(err)
	}
	if err := ty.Commit(); err != nil {
		log.Fatal(err)
	}

	// 1. A lossy ring that recovers. The plan injects 30% uniform
	// faults — drops, corruption, truncation, duplication, reordering,
	// delays — and the same seed reproduces the same fault sequence
	// every run. The received bytes are verified against per-transfer
	// checksums; damaged payloads are NACKed and retried with
	// exponential backoff.
	opts := repro.RunOptions{
		Profile: prof,
		Faults:  repro.UniformFaults(42, 0.3),
	}
	var elapsed float64
	var retries, rejects, chunkRetx, retxBytes, dups int64
	err = repro.Run(4, opts, func(c *repro.Comm) error {
		src := buf.Alloc(int(ty.Extent()))
		dst := buf.Alloc(int(ty.Extent()))
		right, left := (c.Rank()+1)%c.Size(), (c.Rank()+3)%c.Size()
		req, err := c.IrecvType(dst, 1, ty, left, 0)
		if err != nil {
			return err
		}
		if err := c.SsendType(src, 1, ty, right, 0); err != nil {
			return err
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			elapsed = c.Wtime()
		}
		ct := c.Counters()
		retries += ct.Retries
		rejects += ct.IntegrityRejects
		chunkRetx += ct.ChunkRetransmits
		retxBytes += ct.RetransmitBytes
		dups += ct.DupChunksSuppressed
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lossy ring delivered: %d ranks × %d B in %.3g s (%d retries, %d integrity rejections)\n",
		4, ty.Size(), elapsed, retries, rejects)
	// The repair traffic is selective: multi-chunk rendezvous transfers
	// checksum each chunk, the receiver NACKs a damage bitmap, and only
	// those chunks are re-packed and resent — whole-transfer replays
	// are reserved for single-chunk payloads.
	fmt.Printf("  selective repair: %d chunks (%d B) retransmitted instead of whole transfers, %d duplicates suppressed\n",
		chunkRetx, retxBytes, dups)

	// 2. Exhaust the budget. With retries disabled, the first drop is
	// terminal and surfaces as a typed DeliveryError instead of a hang.
	err = repro.Run(2, repro.RunOptions{
		Profile: prof,
		Faults:  repro.DropOnly(7, 1.0), // every delivery dropped
		Retry:   repro.RetryPolicy{MaxRetries: -1},
	}, func(c *repro.Comm) error {
		if c.Rank() == 0 {
			return c.Send(buf.Alloc(256), 1, 0)
		}
		_, err := c.Recv(buf.Alloc(256), 0, 0)
		return err
	})
	var de *repro.DeliveryError
	if errors.As(err, &de) && errors.Is(err, repro.ErrRetriesExhausted) {
		fmt.Printf("budget exhausted as typed error: %v\n", de)
	} else {
		log.Fatalf("expected DeliveryError, got %v", err)
	}

	// 3. A real deadlock. Both ranks receive first — the quiescence
	// detector notices that nothing is runnable and nothing blocked can
	// complete, and aborts with the stuck endpoints instead of hanging.
	err = repro.Run(2, repro.RunOptions{Profile: prof, DetectDeadlock: true}, func(c *repro.Comm) error {
		_, err := c.Recv(buf.Alloc(64), 1-c.Rank(), 3)
		return err
	})
	var dl *repro.DeadlockError
	if errors.As(err, &dl) {
		fmt.Printf("deadlock detected: %d stuck endpoints\n", len(dl.Report.Stuck))
		for _, b := range dl.Report.Stuck {
			fmt.Printf("  %v\n", b)
		}
	} else {
		log.Fatalf("expected DeadlockError, got %v", err)
	}

	// 4. A collective that fails with its leg named. With retries
	// disabled every rank's broadcast dies on the first drop, and the
	// CollectiveError carries which leg of the tree broke and toward
	// which peer — rank and edge, not just "bcast failed".
	err = repro.Run(4, repro.RunOptions{
		Profile: prof,
		Faults:  repro.DropOnly(11, 1.0),
		Retry:   repro.RetryPolicy{MaxRetries: -1},
	}, func(c *repro.Comm) error {
		dst := buf.Alloc(int(ty.Extent()))
		return c.BcastType(dst, 1, ty, 0)
	})
	var ce *repro.CollectiveError
	if errors.As(err, &ce) {
		if ce.Leg != "" {
			fmt.Printf("collective failed with attribution: op=%s rank=%d leg=%s peer=%d\n", ce.Op, ce.Rank, ce.Leg, ce.Peer)
		} else {
			fmt.Printf("collective failed: %v\n", ce)
		}
	} else {
		log.Fatalf("expected CollectiveError, got %v", err)
	}

	// 5. What the cost model says. The fault-adjusted recommendation
	// folds expected retries and backoff into the scheme ladder —
	// selective chunk recovery keeps the pipelined engines ahead where
	// whole-transfer replay used to sink them.
	fp := repro.FaultProfile{LegLossRate: 0.04, MaxRetries: 8, BaseBackoff: 20e-6, MaxBackoff: 2e-3}
	rec := repro.RecommendUnderFaults(ty.Size(), false, repro.GoalFastest, prof, fp)
	fmt.Printf("\nrecommended under 4%% leg loss: %s\n  (%s)\n", rec.Scheme, rec.Reason)

	// 6. The same question for a collective. Tree hops replay whole
	// transfers on damage while the chunked pipelined ring recovers
	// selectively, so as the loss rate climbs the ladder flips from the
	// tree toward the ring.
	crec := repro.RecommendCollectiveUnderFaults(16, 16<<20, false, repro.GoalFastest, prof, fp)
	fmt.Printf("collective at 16 ranks × 16 MiB under 4%% leg loss: %s\n  (%s)\n", crec.Scheme, crec.Reason)
	cm := repro.PriceCollectiveUnderFaults(16, 16<<20, prof, fp)
	fmt.Printf("  tree delivery %.4f vs ring delivery %.4f (ring gain %.2fx)\n",
		cm.TreeDeliveryProb, cm.RingDeliveryProb, cm.RingGainUnderFaults())
}
