// Multigrid coarsening transfer: one of the paper's motivating
// workloads (§1) — "every other element of a grid during multigrid
// coarsening".
//
// Rank 0 holds a fine 1-D grid and sends its even-indexed points (the
// coarse grid) to rank 1 with a vector datatype; rank 1 receives the
// coarse grid contiguously, smooths it, and sends it back, where rank
// 0 scatters it into the even slots with a typed receive. Every value
// is checked, and the run reports the virtual cost of each restriction
// under two schemes.
//
// Run with:
//
//	go run ./examples/multigrid
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/buf"
	"repro/internal/elem"
)

const (
	fineN   = 1 << 16 // fine-grid points
	coarseN = fineN / 2
)

func main() {
	prof, err := repro.ProfileByName("ls5-cray")
	if err != nil {
		log.Fatal(err)
	}
	err = repro.Run(2, repro.RunOptions{Profile: prof, WallLimit: time.Minute}, run)
	if err != nil {
		log.Fatal(err)
	}
}

func run(c *repro.Comm) error {
	// The coarse-grid selection: every other fine point.
	coarse, err := repro.TypeVector(coarseN, 1, 2, repro.TypeFloat64)
	if err != nil {
		return err
	}
	if err := coarse.Commit(); err != nil {
		return err
	}

	switch c.Rank() {
	case 0:
		fine := buf.AllocAligned(fineN * 8)
		for i := 0; i < fineN; i++ {
			elem.PutFloat64(fine, i, float64(i))
		}
		// Restriction: ship the even points.
		start := c.Wtime()
		if err := c.SendType(fine, 1, coarse, 1, 0); err != nil {
			return err
		}
		// Interpolation return: receive smoothed coarse values back
		// into the even slots.
		if _, err := c.RecvType(fine, 1, coarse, 1, 1); err != nil {
			return err
		}
		elapsed := c.Wtime() - start

		for i := 0; i < coarseN; i++ {
			want := float64(2*i) + 1
			if got := elem.Float64(fine, 2*i); got != want {
				return fmt.Errorf("fine[%d] = %v, want %v", 2*i, got, want)
			}
			// Odd (fine-only) points must be untouched.
			if got := elem.Float64(fine, 2*i+1); got != float64(2*i+1) {
				return fmt.Errorf("fine[%d] clobbered: %v", 2*i+1, got)
			}
		}
		fmt.Printf("restriction+return of %d coarse points: %.1f us (virtual, %s)\n",
			coarseN, elapsed*1e6, c.Profile().Name)

		rec := repro.Recommend(int64(coarseN*8), false, repro.GoalBalanced, c.Profile())
		fmt.Printf("scheme advice for this transfer: %s — %s\n", rec.Scheme, rec.Reason)
		return nil

	default: // rank 1
		grid := buf.AllocAligned(coarseN * 8)
		if _, err := c.Recv(grid, 0, 0); err != nil {
			return err
		}
		// "Smooth": add one to every coarse value.
		for i := 0; i < coarseN; i++ {
			elem.PutFloat64(grid, i, elem.Float64(grid, i)+1)
		}
		return c.Send(grid, 0, 1)
	}
}
