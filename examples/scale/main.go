// Scale: drive a concurrent job mix — four independent ring
// communicators over one simulated fabric, every rank holding four
// typed transfers in flight — and read the sustained aggregate
// throughput, the completion tail, and the fabric's shard-contention
// attribution. Payloads are virtual (length-only), so hundreds of
// ranks run in well under a second of wall time; all reported times
// are virtual clock.
//
// Run with:
//
//	go run ./examples/scale
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	prof, err := repro.ProfileByName("skx-impi")
	if err != nil {
		log.Fatal(err)
	}

	// 256 ranks over 4 ring communicators (job j owns the world ranks
	// with rank%4 == j), each rank posting 4 non-blocking typed
	// transfers (IrecvType from the left ring neighbour, IsendvType to
	// the right) before any are drained: 1024 typed transfers in
	// flight across the fabric at the peak. NodeSize overlays a node
	// hierarchy — 16 consecutive ranks per node with an intra-node
	// latency discount — so the mix's barriers and collectives ride
	// the two-level topologies.
	mix := repro.JobMix{
		Ranks:    256,
		Jobs:     4,
		InFlight: 4,
		Rounds:   2,
		Bytes:    1 << 20, // 1 MiB per transfer: rendezvous territory
		Profile:  prof,
		NodeSize: 16,
	}
	res, err := repro.RunJobMix(mix)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("job mix: %d ranks × %d jobs × %d in flight × %d rounds, %d-byte typed transfers\n",
		res.Ranks, res.Jobs, res.InFlight, res.Rounds, res.Bytes)
	fmt.Printf("  completed %d transfers in %.3gs virtual — %.1f GB/s aggregate\n",
		res.Transfers, res.Elapsed, res.AggregateGBs)
	fmt.Printf("  completion: p50 %.3gs, p99 %.3gs\n", res.P50, res.P99)
	fmt.Printf("  peak concurrent typed transfers: %d\n", res.InFlightPeak)

	// The matching attribution is the point of the sharded matcher:
	// every receive here names its source, so all matches take the
	// per-(communicator, source) fast path — no global scan, no
	// wildcard slow path, regardless of how many jobs share the
	// fabric.
	fmt.Printf("  matching: %d shard queues live, %d fast-path takes, %d wildcard takes\n",
		res.Matching.Queues, res.Matching.FastTakes, res.Matching.WildTakes)
	fmt.Printf("  pool: %d gets (%d recycled), %d eager adaptations under pressure\n",
		res.Pool.Gets, res.Pool.Hits, res.Pool.EagerAdaptations)

	// The same hierarchy feeds the collective cost model: on a
	// machine with 16 ranks per node and a cheap intra-node hop, the
	// two-level topology (leader tree over nodes plus intra-node
	// fans) beats the flat fan by crossing the wire once per node
	// instead of once per rank.
	hier := *prof
	hier.Mem.NodeSize = 16
	hier.IntraNodeLatency = hier.NetLatency / 10
	m := repro.PriceCollective(256, 4096, &hier)
	fmt.Printf("\ncollective model at 256 ranks, 4 KiB slots: flat %.3gs vs two-level %.3gs over %d nodes — %.2fx\n",
		m.TypedCollective, m.TwoLevelTyped, m.Nodes, m.TwoLevelSpeedup())
}
