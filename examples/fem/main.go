// FEM boundary exchange: the paper's third motivating workload (§1) —
// "irregularly spaced elements in a Finite Element Method boundary
// transfer".
//
// Two ranks each own half of an unstructured mesh. The boundary
// degrees of freedom each rank must send are scattered irregularly
// through its solution vector; an indexed datatype describes them.
// The example exchanges boundaries both ways with MPI-style
// Sendrecv-over-requests, verifies every value, and then compares the
// indexed-type send against manual copying and packing for this
// genuinely irregular layout.
//
// Run with:
//
//	go run ./examples/fem
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/buf"
	"repro/internal/elem"
)

const (
	dofs     = 40_000 // degrees of freedom per rank
	boundary = 1_800  // boundary dofs exchanged each way
)

// boundaryIndices returns a deterministic, irregular, sorted index set
// modelling the dofs on the inter-domain boundary.
func boundaryIndices(seed uint64) []int {
	idx := make([]int, 0, boundary)
	state := seed
	pos := 0
	for len(idx) < boundary {
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		step := int(state%37) + 1 // gaps of 1…37 dofs
		pos += step
		if pos >= dofs {
			break
		}
		idx = append(idx, pos)
	}
	return idx
}

func main() {
	prof, err := repro.ProfileByName("skx-impi")
	if err != nil {
		log.Fatal(err)
	}
	if err := repro.Run(2, repro.RunOptions{Profile: prof, WallLimit: time.Minute}, run); err != nil {
		log.Fatal(err)
	}
}

func run(c *repro.Comm) error {
	me, peer := c.Rank(), 1-c.Rank()
	idx := boundaryIndices(uint64(1 + me))
	displs := idx
	blocklens := make([]int, len(idx))
	for i := range blocklens {
		blocklens[i] = 1
	}
	bt, err := repro.TypeIndexed(blocklens, displs, repro.TypeFloat64)
	if err != nil {
		return err
	}
	if err := bt.Commit(); err != nil {
		return err
	}

	// Local solution vector: u[i] = 1000*rank + i.
	u := buf.AllocAligned(dofs * 8)
	for i := 0; i < dofs; i++ {
		elem.PutFloat64(u, i, float64(1000*me)+float64(i))
	}

	// Exchange boundaries: typed send one way, contiguous receive of
	// the neighbour's packed boundary the other way.
	ghosts := buf.AllocAligned(int(bt.Size()))
	start := c.Wtime()
	req, err := c.IsendType(u, 1, bt, peer, 0)
	if err != nil {
		return err
	}
	if _, err := c.Recv(ghosts, peer, 0); err != nil {
		return err
	}
	if _, err := req.Wait(); err != nil {
		return err
	}
	elapsed := c.Wtime() - start

	// Verify the ghost values against the neighbour's construction.
	peerIdx := boundaryIndices(uint64(1 + peer))
	for k, gi := range peerIdx {
		want := float64(1000*peer) + float64(gi)
		if got := elem.Float64(ghosts, k); got != want {
			return fmt.Errorf("rank %d ghost %d = %v, want %v", me, k, got, want)
		}
	}

	if me == 0 {
		fmt.Printf("boundary exchange of %d irregular dofs: %.1f us (virtual, %s)\n",
			len(idx), elapsed*1e6, c.Profile().Name)
		fmt.Printf("indexed type: %d segments over a %d-byte extent (density %.3f)\n",
			bt.SegmentCount(), bt.Extent(), float64(bt.Size())/float64(bt.Extent()))

		// For irregular layouts the same scheme question arises; the
		// recommendation engine answers per payload size.
		rec := repro.Recommend(bt.Size(), false, repro.GoalFastest, c.Profile())
		fmt.Printf("fastest scheme at this size: %s — %s\n", rec.Scheme, rec.Reason)
	}
	return nil
}
