// 2-D halo exchange: the classic stencil-code pattern where
// non-contiguous sends appear in production — each rank owns a tile of
// a global grid and exchanges one-cell-deep edges with its neighbours
// every iteration. Row edges are contiguous; *column* edges are
// strided with one element per grid row, exactly the datatype question
// the paper studies.
//
// Four ranks form a 2×2 process grid. Column halos go out as subarray
// datatypes (MPI_Type_create_subarray of an N×1 column), row halos as
// plain contiguous sends. After one exchange every ghost cell is
// verified against the neighbour's interior. The example then reports
// what the column-halo transfer costs under the derived-type scheme
// versus packing, at this (small) size — where the paper says the
// choice doesn't matter.
//
// Run with:
//
//	go run ./examples/halo2d
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/buf"
	"repro/internal/elem"
)

const (
	tile = 128      // interior cells per dimension
	ext  = tile + 2 // tile plus one ghost layer each side
	px   = 2        // process grid columns
	nprc = 4        // 2×2 ranks
)

// value is the globally unique cell value rank r assigns to its
// interior cell (i, j), used to verify ghost exchange.
func value(r, i, j int) float64 {
	return float64(r*1_000_000 + i*1_000 + j)
}

func main() {
	prof, err := repro.ProfileByName("skx-impi")
	if err != nil {
		log.Fatal(err)
	}
	if err := repro.Run(nprc, repro.RunOptions{Profile: prof, WallLimit: time.Minute}, run); err != nil {
		log.Fatal(err)
	}
}

func run(c *repro.Comm) error {
	me := c.Rank()
	// The 2×2 process grid as a Cartesian topology: Shift hands back
	// the stencil neighbours, ProcNull marks the grid edge.
	cart, err := c.CartCreate([]int{nprc / px, px}, []bool{false, false})
	if err != nil {
		return err
	}

	// Local tile with ghost frame, row-major ext×ext float64s.
	grid := buf.AllocAligned(ext * ext * 8)
	at := func(i, j int) int { return i*ext + j }
	for i := 1; i <= tile; i++ {
		for j := 1; j <= tile; j++ {
			elem.PutFloat64(grid, at(i, j), value(me, i, j))
		}
	}

	// Column datatypes: a tile×1 subarray of the ext×ext grid. One
	// type per column of interest (send columns 1 and tile; receive
	// ghost columns 0 and tile+1).
	colType := func(col int) *repro.Datatype {
		ty, err := repro.TypeSubarray(
			[]int{ext, ext}, // full local array
			[]int{tile, 1},  // one interior-height column
			[]int{1, col},   // starting at row 1, the given column
			repro.TypeFloat64,
		)
		if err != nil {
			panic(err)
		}
		if err := ty.Commit(); err != nil {
			panic(err)
		}
		return ty
	}

	start := c.Wtime()

	// East-west exchange: strided column halos via subarray types.
	west, east, err := cart.Shift(1, 1)
	if err != nil {
		return err
	}
	if east >= 0 {
		if err := c.SendType(grid, 1, colType(tile), east, 0); err != nil {
			return err
		}
	}
	if west >= 0 {
		if _, err := c.RecvType(grid, 1, colType(0), west, 0); err != nil {
			return err
		}
		if err := c.SendType(grid, 1, colType(1), west, 1); err != nil {
			return err
		}
	}
	if east >= 0 {
		if _, err := c.RecvType(grid, 1, colType(tile+1), east, 1); err != nil {
			return err
		}
	}

	// North-south exchange: contiguous row halos.
	north, south, err := cart.Shift(0, 1)
	if err != nil {
		return err
	}
	row := func(i int) buf.Block { return grid.Slice(at(i, 1)*8, tile*8) }
	if south >= 0 {
		if err := c.Send(row(tile), south, 2); err != nil {
			return err
		}
	}
	if north >= 0 {
		if _, err := c.Recv(row(0), north, 2); err != nil {
			return err
		}
		if err := c.Send(row(1), north, 3); err != nil {
			return err
		}
	}
	if south >= 0 {
		if _, err := c.Recv(row(tile+1), south, 3); err != nil {
			return err
		}
	}
	elapsed := c.Wtime() - start

	// Verify every ghost cell against the neighbour's interior.
	if west >= 0 {
		for i := 1; i <= tile; i++ {
			if got, want := elem.Float64(grid, at(i, 0)), value(west, i, tile); got != want {
				return fmt.Errorf("rank %d west ghost row %d: %v != %v", me, i, got, want)
			}
		}
	}
	if east >= 0 {
		for i := 1; i <= tile; i++ {
			if got, want := elem.Float64(grid, at(i, tile+1)), value(east, i, 1); got != want {
				return fmt.Errorf("rank %d east ghost row %d: %v != %v", me, i, got, want)
			}
		}
	}
	if north >= 0 {
		for j := 1; j <= tile; j++ {
			if got, want := elem.Float64(grid, at(0, j)), value(north, tile, j); got != want {
				return fmt.Errorf("rank %d north ghost col %d: %v != %v", me, j, got, want)
			}
		}
	}
	if south >= 0 {
		for j := 1; j <= tile; j++ {
			if got, want := elem.Float64(grid, at(tile+1, j)), value(south, 1, j); got != want {
				return fmt.Errorf("rank %d south ghost col %d: %v != %v", me, j, got, want)
			}
		}
	}

	c.Barrier()
	if me == 0 {
		fmt.Printf("2x2 halo exchange of a %dx%d tile verified on all ranks: %.1f us (virtual, %s)\n",
			tile, tile, elapsed*1e6, c.Profile().Name)
		colBytes := int64(tile * 8)
		rec := repro.Recommend(colBytes, false, repro.GoalBalanced, c.Profile())
		fmt.Printf("column halo is %d bytes; advice: %s — %s\n", colBytes, rec.Scheme, rec.Reason)
	}
	return nil
}
