// Complex-parts transfer: the paper's first motivating workload (§1)
// — "the real parts of a complex array".
//
// A complex128 is laid out as (real, imag) float64 pairs, so "the real
// parts" is exactly the every-other-element vector type the whole
// study benchmarks: block length one float64, stride two. Rank 0 holds
// a signal of complex samples and ships only the real parts to rank 1,
// once with a derived datatype and once with MPI_Pack on that type —
// the scheme the paper crowns (§5) — and reports both costs.
//
// Run with:
//
//	go run ./examples/complexparts
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"repro"
	"repro/internal/buf"
	"repro/internal/elem"
)

const samples = 1 << 15

func main() {
	prof, err := repro.ProfileByName("skx-mvapich")
	if err != nil {
		log.Fatal(err)
	}
	if err := repro.Run(2, repro.RunOptions{Profile: prof, WallLimit: time.Minute}, run); err != nil {
		log.Fatal(err)
	}
}

func run(c *repro.Comm) error {
	// complex128 = 2 float64s; the real parts are every other float64.
	realParts, err := repro.TypeVector(samples, 1, 2, repro.TypeFloat64)
	if err != nil {
		return err
	}
	if err := realParts.Commit(); err != nil {
		return err
	}

	if c.Rank() == 0 {
		signal := buf.AllocAligned(samples * 16)
		for i := 0; i < samples; i++ {
			phase := 2 * math.Pi * float64(i) / 256
			elem.PutComplex128(signal, i, complex(math.Cos(phase), math.Sin(phase)))
		}

		// Scheme A: derived datatype, sent directly. Flush the cache
		// first so both schemes start cold, like the paper's protocol.
		c.Cache().Flush()
		t0 := c.Wtime()
		if err := c.SendType(signal, 1, realParts, 1, 0); err != nil {
			return err
		}
		if _, err := c.Recv(buf.Alloc(0), 1, 100); err != nil {
			return err
		}
		direct := c.Wtime() - t0

		// Scheme B: one MPI_Pack call on the type, send the packed
		// buffer (packing(v), the paper's winner).
		packed := buf.AllocAligned(samples * 8)
		c.Cache().Flush()
		t0 = c.Wtime()
		var pos int64
		if err := c.Pack(signal, 1, realParts, packed, &pos); err != nil {
			return err
		}
		if err := c.SendPacked(packed, 1, 1); err != nil {
			return err
		}
		if _, err := c.Recv(buf.Alloc(0), 1, 101); err != nil {
			return err
		}
		packedT := c.Wtime() - t0

		fmt.Printf("sending %d real parts (%d bytes) on %s:\n", samples, samples*8, c.Profile().Name)
		fmt.Printf("  vector datatype direct: %8.1f us\n", direct*1e6)
		fmt.Printf("  packing(v) + send:      %8.1f us\n", packedT*1e6)
		return nil
	}

	// Rank 1: receive and verify both transfers.
	for round := 0; round < 2; round++ {
		re := buf.AllocAligned(samples * 8)
		if _, err := c.Recv(re, 0, round); err != nil {
			return err
		}
		for i := 0; i < samples; i++ {
			want := math.Cos(2 * math.Pi * float64(i) / 256)
			if got := elem.Float64(re, i); math.Abs(got-want) > 1e-12 {
				return fmt.Errorf("round %d: real[%d] = %v, want %v", round, i, got, want)
			}
		}
		if err := c.Send(buf.Alloc(0), 0, 100+round); err != nil {
			return err
		}
	}
	return nil
}
