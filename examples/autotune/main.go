// Autotune: use the recommendation engine (the paper's conclusion as
// code) and verify its advice empirically by measuring all schemes
// across sizes and checking that the recommended scheme is never far
// from the measured best.
//
// Run with:
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	prof, err := repro.ProfileByName("skx-impi")
	if err != nil {
		log.Fatal(err)
	}
	opt := repro.DefaultOptions()
	opt.Reps = 5

	sizes := []int64{10_000, 1_000_000, 100_000_000, 1_000_000_000}
	fmt.Printf("auto-tuning non-contiguous sends on %s\n\n", prof.Description)

	for _, n := range sizes {
		w := repro.WorkloadForBytes(n)
		w.Virtual = n > opt.MaxRealBytes

		best := repro.Scheme(-1)
		bestT := 0.0
		times := map[repro.Scheme]float64{}
		for _, s := range repro.Schemes() {
			if s == repro.Reference {
				continue // the baseline is not a non-contiguous option
			}
			m, err := repro.Measure(prof, s, w, opt)
			if err != nil {
				log.Fatal(err)
			}
			times[s] = m.Time()
			if best < 0 || m.Time() < bestT {
				best, bestT = s, m.Time()
			}
		}

		rec := repro.Recommend(n, false, repro.GoalFastest, prof)
		gap := times[rec.Scheme]/bestT - 1
		fmt.Printf("%12d bytes: measured best %-12s recommended %-12s (within %4.1f%% of best)\n",
			n, best.String(), rec.Scheme.String(), gap*100)
	}

	fmt.Println("\nthe paper's conclusion (§5): packing a derived datatype consistently")
	fmt.Println("matches the manual copy and avoids MPI-internal buffering at large sizes.")
}
