// Quickstart: create a strided derived datatype, ping-pong it between
// two simulated ranks, and compare the paper's headline schemes at one
// size.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	prof, err := repro.ProfileByName("skx-impi")
	if err != nil {
		log.Fatal(err)
	}

	// The paper's canonical payload: every other float64, 1 MB of
	// payload spread over 2 MB of memory.
	w := repro.WorkloadForBytes(1 << 20)

	opt := repro.DefaultOptions()
	opt.Reps = 10

	fmt.Printf("profile: %s\nworkload: %d blocks × %d elements, stride %d (payload %d bytes)\n\n",
		prof.Description, w.Count, w.BlockLen, w.Stride, w.Bytes())
	fmt.Printf("%-12s %12s %10s %9s\n", "scheme", "time", "GB/s", "slowdown")

	var ref float64
	for _, s := range repro.Schemes() {
		m, err := repro.Measure(prof, s, w, opt)
		if err != nil {
			log.Fatal(err)
		}
		if s == repro.Reference {
			ref = m.Time()
		}
		fmt.Printf("%-12s %10.2fus %10.2f %8.2fx\n",
			s, m.Time()*1e6, m.Bandwidth()/1e9, m.Time()/ref)
	}

	rec := repro.Recommend(w.Bytes(), false, repro.GoalBalanced, prof)
	fmt.Printf("\nrecommended scheme for this payload: %s\n  (%s)\n", rec.Scheme, rec.Reason)
}
