package repro_test

import (
	"testing"
	"time"

	"repro"
	"repro/internal/buf"
)

func TestFacadeMeasure(t *testing.T) {
	prof, err := repro.ProfileByName("skx-impi")
	if err != nil {
		t.Fatal(err)
	}
	opt := repro.DefaultOptions()
	opt.Reps = 3
	m, err := repro.Measure(prof, repro.PackVector, repro.WorkloadForBytes(1<<16), opt)
	if err != nil {
		t.Fatal(err)
	}
	if m.Time() <= 0 || m.Bandwidth() <= 0 {
		t.Fatalf("measurement = %+v", m)
	}
	if !m.Verified {
		t.Fatal("payload not verified")
	}
}

func TestFacadeProfiles(t *testing.T) {
	names := repro.ProfileNames()
	if len(names) < 4 {
		t.Fatalf("profiles = %v", names)
	}
	for _, n := range names {
		if _, err := repro.ProfileByName(n); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
}

func TestFacadeSchemes(t *testing.T) {
	// The paper's eight schemes plus the compiled-pack,
	// fused-rendezvous and pipelined-typed columns.
	if len(repro.Schemes()) != 11 {
		t.Fatalf("schemes = %v", repro.Schemes())
	}
	s, err := repro.SchemeByName("packing(v)")
	if err != nil || s != repro.PackVector {
		t.Fatalf("SchemeByName: %v, %v", s, err)
	}
	s, err = repro.SchemeByName("packing(c)")
	if err != nil || s != repro.PackCompiled {
		t.Fatalf("SchemeByName packing(c): %v, %v", s, err)
	}
}

func TestFacadeRecommend(t *testing.T) {
	prof, _ := repro.ProfileByName("generic")
	r := repro.Recommend(1<<30, false, repro.GoalBalanced, prof)
	if r.Scheme != repro.PackCompiled {
		t.Fatalf("large balanced recommendation = %v", r.Scheme)
	}
}

func TestFacadeSelfTuning(t *testing.T) {
	prof, _ := repro.ProfileByName("generic")
	o := repro.NewObservedHierarchy()
	// Observation says the typed send is 10x the explicit pack: the
	// tuned recommender must abandon it.
	for i := 0; i < 4; i++ {
		o.Observe(repro.PathTypedSend, 1<<20, 1e-3)
		o.Observe(repro.PathPackedSend, 1<<20, 1e-4)
	}
	r := repro.RecommendTuned(1<<20, false, repro.GoalFastest, prof, o)
	if r.Scheme == repro.VectorType {
		t.Fatalf("tuned recommendation kept the typed send: %+v", r)
	}
	// A persistent typed send feeds the communicator's sink.
	obs := repro.NewObservedHierarchy()
	err := repro.Run(2, repro.RunOptions{}, func(c *repro.Comm) error {
		c.ObserveInto(obs)
		ty, err := repro.TypeVector(64, 1, 2, repro.TypeFloat64)
		if err != nil {
			return err
		}
		if err := ty.Commit(); err != nil {
			return err
		}
		b := buf.Alloc(int(ty.Extent()))
		peer := 1 - c.Rank()
		var req *repro.PersistentRequest
		if c.Rank() == 0 {
			req, err = c.SendTypeInit(b, 1, ty, peer, 0)
		} else {
			req, err = c.RecvTypeInit(b, 1, ty, peer, 0)
		}
		if err != nil {
			return err
		}
		for i := 0; i < 3; i++ {
			if err := req.Start(); err != nil {
				return err
			}
			if _, err := req.Wait(); err != nil {
				return err
			}
		}
		return req.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := obs.Samples(repro.PathTypedSend); n != 3 {
		t.Fatalf("persistent sends recorded %d typed-send samples, want 3", n)
	}
}

func TestFacadeGuidelinesSweep(t *testing.T) {
	rp, err := repro.GuidelinesSweep(repro.GuidelinesConfig{
		Profiles: []string{"skx-impi"},
		Sizes:    []int64{8 << 10},
		Reps:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rp.Results) == 0 {
		t.Fatal("empty guidelines report")
	}
}

func TestFacadeRunAndTypes(t *testing.T) {
	err := repro.Run(2, repro.RunOptions{WallLimit: 30 * time.Second}, func(c *repro.Comm) error {
		ty, err := repro.TypeVector(16, 1, 2, repro.TypeFloat64)
		if err != nil {
			return err
		}
		if err := ty.Commit(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			src := buf.Alloc(int(ty.Extent()))
			src.FillPattern(7)
			return c.SendType(src, 1, ty, 1, 0)
		}
		dst := buf.Alloc(int(ty.Size()))
		_, err = c.Recv(dst, 0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFacadeBuildFigure(t *testing.T) {
	opt := repro.DefaultOptions()
	opt.Reps = 2
	opt.MaxRealBytes = 1
	opt.Verify = false
	fig, err := repro.BuildFigure("ls5-cray", []int64{1_000, 1_000_000}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Time) != 11 || len(fig.Slowdown) != 11 {
		t.Fatalf("panels: %d time, %d slowdown", len(fig.Time), len(fig.Slowdown))
	}
}

func TestFigureSizesSpanPaperRange(t *testing.T) {
	sizes := repro.FigureSizes(3)
	if sizes[0] > 1_000 || sizes[len(sizes)-1] < 999_000_000 {
		t.Fatalf("sizes = %v … %v", sizes[0], sizes[len(sizes)-1])
	}
}
